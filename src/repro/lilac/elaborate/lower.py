"""Lowering: concrete Filament modules -> RTL netlists.

Because every schedule is static (the type checker proved window
containment for all reads), lowering is purely structural: signals are
wires, invocations are submodule instances, and no handshaking logic is
generated — this is precisely the efficiency argument of the paper's
latency-sensitive/latency-abstract designs.

Two pieces of control logic *are* generated, both part of any real LS
design:

* a **pulse chain** delaying the module's ``go`` event, used to drive the
  interface (valid) pins of children that need them (generated modules,
  hold registers);
* **time-multiplexing muxes** when several invocations share one instance
  (explicit resource reuse): the instance's inputs are selected by the
  pulse phase of each invocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...filament import (
    ConstRef,
    FilamentError,
    FInvoke,
    FModule,
    FPort,
    InputRef,
    InvokeOutRef,
    PackRef,
    Ref,
)
from ...rtl import Module, Net


def _buffer(module: Module, src: Net, dst: Net) -> None:
    """Drive ``dst`` from ``src`` (slice-at-0 acts as a zero-cost buffer)."""
    module.add_cell("slice", {"a": src, "out": dst}, {"lsb": 0})


def build_extern_module(
    name: str,
    prim: str,
    params: Dict[str, int],
    inputs: List[FPort],
    outputs: List[FPort],
) -> Module:
    """Materialize an extern component as a tiny RTL module."""
    module = Module(name)
    nets: Dict[str, Net] = {}
    for port in inputs:
        nets[port.name] = module.add_input(
            port.name, port.width * (port.size or 1)
        )
    for port in outputs:
        nets[port.name] = module.add_output(
            port.name, port.width * (port.size or 1)
        )
    if prim == "reg":
        module.add_cell("reg", {"d": nets["in"], "q": nets["out"]})
    elif prim == "reg_hold":
        module.add_cell(
            "regen", {"d": nets["in"], "en": nets["en_i"], "q": nets["out"]}
        )
    elif prim == "delay_buf":
        _build_delay_buf(module, nets, params)
    elif prim == "mux":
        module.add_cell(
            "mux",
            {"sel": nets["sel"], "a": nets["a"], "b": nets["b"], "out": nets["out"]},
        )
    elif prim in ("add", "sub", "mul", "and", "or", "xor", "eq", "lt"):
        module.add_cell(prim, {"a": nets["a"], "b": nets["b"], "out": nets["out"]})
    elif prim == "not":
        module.add_cell("not", {"a": nets["a"], "out": nets["out"]})
    elif prim in ("shl", "shr"):
        module.add_cell(
            prim, {"a": nets["a"], "out": nets["out"]},
            {"amount": params.get("#S", 0)},
        )
    elif prim == "slice":
        module.add_cell(
            "slice", {"a": nets["a"], "out": nets["out"]},
            {"lsb": params.get("#LSB", 0)},
        )
    elif prim == "concat":
        module.add_cell(
            "concat", {"a": nets["a"], "b": nets["b"], "out": nets["out"]}
        )
    elif prim == "const":
        module.add_cell(
            "const", {"out": nets["out"]}, {"value": params.get("#V", 0)}
        )
    else:
        raise FilamentError(f"unknown extern primitive {prim!r}")
    return module


def _build_delay_buf(module: Module, nets: Dict[str, Net], params: Dict[str, int]) -> None:
    """Two alternating register banks + a phase bit delayed by #T.

    The bank written at transaction time holds its value for two
    initiation intervals, so the output can be read #T cycles later as
    long as at most two transactions are in flight.
    """
    delay = params["#T"]
    en = nets["en_i"]
    data = nets["in"]
    out = nets["out"]
    phase = module.fresh_net(1, "phase")
    flipped = module.unop("not", phase, width=1)
    next_phase = module.mux(en, flipped, phase)
    module.add_cell("reg", {"d": next_phase, "q": phase}, {"init": 0})
    write_a = module.binop("and", en, flipped, 1)  # phase 0 writes bank A
    write_b = module.binop("and", en, phase, 1)
    bank_a = module.fresh_net(data.width, "bank_a")
    bank_b = module.fresh_net(data.width, "bank_b")
    module.add_cell("regen", {"d": data, "en": write_a, "q": bank_a})
    module.add_cell("regen", {"d": data, "en": write_b, "q": bank_b})
    # Which bank was written `delay` cycles ago: the phase value at the
    # write instant, delayed.
    read_sel = module.delay_chain(phase, delay)
    selected = module.mux(read_sel, bank_b, bank_a)
    module.add_cell("slice", {"a": selected, "out": out}, {"lsb": 0})


class _Lowerer:
    def __init__(self, fmodule: FModule):
        self.fm = fmodule
        self.module = Module(fmodule.name)
        self.go: Optional[Net] = None
        self.go_name = "go"
        self.pulses: List[Net] = []
        self.input_nets: Dict[str, Net] = {}
        self.input_slices: Dict[Tuple[str, int], Net] = {}
        self.group_outputs: Dict[str, Dict[str, Net]] = {}
        self.invoke_group: Dict[str, str] = {}
        self.output_elements: Dict[str, Dict[int, Net]] = {}

    def lower(self) -> Module:
        self._create_ports()
        groups = self._group_invokes()
        for key, invokes in groups.items():
            self._allocate_group_outputs(key, invokes)
        for key, invokes in groups.items():
            self._build_group(key, invokes)
        self._drive_outputs()
        return self.module

    # ------------------------------------------------------------------

    def _create_ports(self) -> None:
        for port in self.fm.inputs:
            if port.interface:
                self.go_name = port.name
                self.go = self.module.add_input(port.name, 1)
            else:
                self.input_nets[port.name] = self.module.add_input(
                    port.name, port.width * (port.size or 1)
                )
        if self.go is None:
            self.go = self.module.add_input("go", 1)
        for port in self.fm.outputs:
            self.input_nets[f"!out:{port.name}"] = self.module.add_output(
                port.name, port.width * (port.size or 1)
            )

    def _pulse(self, time: int) -> Net:
        """The go pulse delayed by ``time`` cycles (shared register chain)."""
        if time < 0:
            raise FilamentError(f"{self.fm.name}: negative schedule time {time}")
        while len(self.pulses) <= time:
            if not self.pulses:
                self.pulses.append(self.go)
            else:
                self.pulses.append(self.module.register(self.pulses[-1]))
        return self.pulses[time]

    def _group_invokes(self) -> Dict[str, List[FInvoke]]:
        groups: Dict[str, List[FInvoke]] = {}
        for invoke in self.fm.invokes:
            key = getattr(invoke, "_instance_key", invoke.name)
            groups.setdefault(key, []).append(invoke)
            self.invoke_group[invoke.name] = key
        return groups

    def _allocate_group_outputs(self, key: str, invokes: List[FInvoke]) -> None:
        child = invokes[0].child
        outs: Dict[str, Net] = {}
        for port in child.outputs:
            if port.interface:
                continue
            outs[port.name] = self.module.fresh_net(
                port.width * (port.size or 1), f"{key}.{port.name}"
            )
        self.group_outputs[key] = outs

    def _build_group(self, key: str, invokes: List[FInvoke]) -> None:
        child = invokes[0].child
        data_ports = [p for p in child.inputs if not p.interface]
        pins: Dict[str, Net] = {}
        for index, port in enumerate(data_ports):
            want = port.width * (port.size or 1)
            if len(invokes) == 1:
                pins[port.name] = self._ref_net(invokes[0].args[index], want)
            else:
                pins[port.name] = self._mux_shared_input(
                    invokes, index, port, want
                )
        child_go = self._child_go_pin(child)
        if child_go is not None:
            pins[child_go] = self._or_pulses([inv.time for inv in invokes])
        for port_name, net in self.group_outputs[key].items():
            pins[port_name] = net
        self.module.add_submodule(child.module, pins, name=f"i${key}")

    def _child_go_pin(self, child) -> Optional[str]:
        go_port = child.go_port
        if go_port is not None:
            return go_port
        if "go" in child.module.ports and child.module.port_dirs["go"] == "in":
            return "go"
        return None

    def _or_pulses(self, times: List[int]) -> Net:
        nets = [self._pulse(t) for t in sorted(set(times))]
        acc = nets[0]
        for net in nets[1:]:
            acc = self.module.binop("or", acc, net, 1)
        return acc

    def _mux_shared_input(
        self, invokes: List[FInvoke], arg_index: int, port: FPort, want: int
    ) -> Net:
        """Time-multiplex a shared instance's input across invocations.

        The select pulses are mutually exclusive (the type system proved
        invocation spacing), so a balanced one-hot mux tree is used.
        """
        from ...rtl.netlist import onehot_mux

        cases = []
        for invoke in invokes:
            arg_net = self._ref_net(invoke.args[arg_index], want)
            window = range(invoke.time + port.start, invoke.time + port.end)
            select = self._or_pulses(list(window))
            cases.append((select, arg_net))
        return onehot_mux(self.module, cases, want)

    def _ref_net(self, ref: Ref, want_width: int) -> Net:
        if isinstance(ref, ConstRef):
            width = ref.width or want_width
            return self.module.constant(ref.value, width)
        if isinstance(ref, PackRef):
            element_width = want_width // max(1, len(ref.elements))
            nets = [self._ref_net(e, element_width) for e in ref.elements]
            packed = nets[-1]
            for net in reversed(nets[:-1]):
                widened = self.module.fresh_net(
                    packed.width + net.width, "argpack"
                )
                self.module.add_cell(
                    "concat", {"a": packed, "b": net, "out": widened}
                )
                packed = widened
            return packed
        if isinstance(ref, InputRef):
            port = self.fm.input(ref.port)
            net = self.input_nets[ref.port]
            if ref.index is None:
                return net
            return self._element(net, ref.port, ref.index, port.width)
        if isinstance(ref, InvokeOutRef):
            group = self.invoke_group[ref.invoke]
            net = self.group_outputs[group][ref.port]
            if ref.index is None:
                return net
            child = None
            for invoke in self.fm.invokes:
                if invoke.name == ref.invoke:
                    child = invoke.child
                    break
            width = child.output(ref.port).width
            return self._element(net, f"{group}.{ref.port}", ref.index, width)
        raise FilamentError(f"cannot lower ref {ref!r}")

    def _element(self, net: Net, label: str, index: int, width: int) -> Net:
        key = (label, index)
        cached = self.input_slices.get(key)
        if cached is not None:
            return cached
        out = self.module.fresh_net(width, f"{label}[{index}]")
        self.module.add_cell(
            "slice", {"a": net, "out": out}, {"lsb": index * width}
        )
        self.input_slices[key] = out
        return out

    def _drive_outputs(self) -> None:
        scalar_srcs: Dict[str, Net] = {}
        for connect in self.fm.connects:
            port = self.fm.output(connect.port)
            want = port.width if connect.index is not None or port.size is None else port.width * (port.size or 1)
            src = self._ref_net(connect.src, want)
            if connect.index is None and port.size is None:
                scalar_srcs[connect.port] = src
            elif connect.index is None and port.size is not None:
                # Whole-array connect.
                scalar_srcs[connect.port] = src
            else:
                self.output_elements.setdefault(connect.port, {})[
                    connect.index
                ] = src
        for port in self.fm.outputs:
            if port.interface:
                continue
            out_net = self.input_nets[f"!out:{port.name}"]
            if port.name in scalar_srcs:
                _buffer(self.module, scalar_srcs[port.name], out_net)
                continue
            elements = self.output_elements.get(port.name)
            if elements is None:
                raise FilamentError(
                    f"{self.fm.name}: output {port.name!r} undriven at lowering"
                )
            packed = self._pack_elements(elements, port)
            _buffer(self.module, packed, out_net)

    def _pack_elements(self, elements: Dict[int, Net], port: FPort) -> Net:
        size = port.size or 1
        acc: Optional[Net] = None
        for index in range(size - 1, -1, -1):
            if index not in elements:
                raise FilamentError(
                    f"{self.fm.name}: output element {port.name}[{index}] "
                    "undriven at lowering"
                )
            element = elements[index]
            if acc is None:
                acc = element
            else:
                out = self.module.fresh_net(
                    acc.width + element.width, f"{port.name}.pack"
                )
                self.module.add_cell(
                    "concat", {"a": acc, "b": element, "out": out}
                )
                acc = out
        return acc


def lower_module(fmodule: FModule) -> Module:
    """Lower a concrete Filament module to an RTL netlist."""
    return _Lowerer(fmodule).lower()

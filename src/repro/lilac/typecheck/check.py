"""Lilac's type system (section 4 of the paper).

For every ``comp`` component the checker walks the body symbolically and
generates proof obligations that guarantee, for *every* parameterization:

1. **Valid reads** — ports are only read during their availability
   intervals (latency safety);
2. **Non-conflicting writes** — one logical driver per port/bundle element
   per clock cycle;
3. **Appropriate delays** — instances are re-invoked no faster than their
   initiation interval allows, and all uses fit within the parent's own
   initiation interval (resource safety / pipeline safety).

Output parameters are encoded as uninterpreted functions over the owning
component's input parameters (``Add::#L`` of an instance
``Add := new FPAdd[#W]`` becomes ``(FPAdd.#L #W)``), exactly the encoding
sketched in section 4.2.  Obligations are discharged by asserting their
negation together with all facts in scope; a SAT answer is turned into a
counterexample parameterization shown to the user.

Conservative sufficient condition for pipeline safety (documented in
DESIGN.md): for an instance with delay ``d`` used at offsets ``o_i`` inside
a component with delay ``D``, we require ``d <= D``, ``|o_i - o_j| >= d``
and ``|o_i - o_j| <= D - d`` pairwise.  This implies non-overlap of
occupancy windows across all pipelined re-executions.
"""

from __future__ import annotations

import itertools
import os
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ... import smt
from ...params import (
    Constraint,
    ParamError,
    PExpr,
    encode as encode_pexpr_raw,
    encode_constraint as encode_constraint_raw,
    pretty,
)
from ..ast import (
    Access,
    Arg,
    Cmd,
    CmdAssert,
    CmdAssume,
    CmdBundle,
    CmdConnect,
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    CmdLet,
    CmdOutBind,
    COMP,
    Component,
    ConstSig,
    LilacError,
    PortDef,
    Program,
    Signature,
)
from .diagnostics import CheckReport, TypeCheckError, format_counterexample


def use_incremental_discharge() -> bool:
    """Whether obligations go through the shared incremental solver.

    Default on; ``REPRO_SMT_INCREMENTAL=0`` selects the per-obligation
    one-shot engine, and ``REPRO_SMT_LEGACY=1`` (the benchmark baseline)
    implies it.
    """
    if _legacy_discharge():
        return False
    return os.environ.get("REPRO_SMT_INCREMENTAL", "1") not in ("", "0")


def _legacy_discharge() -> bool:
    from ...smt.terms import legacy_mode

    return legacy_mode()


def _engine_tag() -> str:
    """Cache-key tag for the active discharge engine.

    Engines agree on every obligation the designs exercise, but their
    axiom instantiation differs in reach (the incremental pipeline
    axiomatizes unions of queries), so verdicts are never shared across
    engines through the cache.
    """
    if _legacy_discharge():
        return "legacy"
    return "inc" if use_incremental_discharge() else "oneshot"


#: Process-wide obligation-verdict memo: canonical digest -> (status,
#: model in canonical names).  Sits above the persistent
#: ``ObligationStore``; hit on every alpha-equivalent re-discharge.
_OBLIGATION_MEMO: Dict[str, Tuple[str, Optional[Dict[str, int]]]] = {}


def clear_obligation_memo() -> None:
    _OBLIGATION_MEMO.clear()


class Obligation:
    """A single proof obligation with enough context to report failures.

    ``facts_upto`` limits which global facts the obligation may use: -1
    means "all facts collected for the component".  Obligations whose goal
    is *itself assumed* as a fact afterwards (instantiation where-clauses)
    snapshot the fact count at creation so the proof cannot be vacuous.
    """

    __slots__ = ("goal", "facts", "path", "message", "kind", "facts_upto")

    def __init__(
        self,
        goal: smt.Term,
        facts: Tuple[smt.Term, ...],
        path: smt.Term,
        message: str,
        kind: str,
        facts_upto: int = -1,
    ):
        self.goal = goal
        self.facts = facts
        self.path = path
        self.message = message
        self.kind = kind
        self.facts_upto = facts_upto


class ResolvedSignal:
    """Availability window + width of a signal reference.

    ``guard`` universally quantifies auxiliary variables (e.g. the fresh
    element index of a whole-bundle read): containment obligations are
    checked under it.
    """

    __slots__ = ("start", "end", "width", "size", "desc", "always", "guard")

    def __init__(
        self, start, end, width, size=None, desc="?", always=False, guard=None
    ):
        self.start = start
        self.end = end
        self.width = width
        self.size = size
        self.desc = desc
        self.always = always
        self.guard = guard if guard is not None else smt.TRUE


class _Instance:
    __slots__ = ("name", "comp", "sig", "arg_terms", "loops")

    def __init__(self, name, comp, sig, arg_terms, loops):
        self.name = name
        self.comp = comp
        self.sig = sig
        self.arg_terms = tuple(arg_terms)
        self.loops = tuple(loops)


class _Invocation:
    __slots__ = ("name", "inst", "offset", "loops", "path", "delay")

    def __init__(self, name, inst, offset, loops, path, delay):
        self.name = name
        self.inst = inst
        self.offset = offset
        self.loops = tuple(loops)
        self.path = path
        self.delay = delay


class _LoopFrame:
    __slots__ = ("var", "term", "lo", "hi")

    def __init__(self, var, term, lo, hi):
        self.var = var
        self.term = term
        self.lo = lo
        self.hi = hi

    def bounds(self) -> smt.Term:
        return smt.And(
            smt.Le(self.lo, self.term),
            smt.Lt(self.term, self.hi),
        )


class _Bundle:
    __slots__ = ("cmd", "loops", "uid")

    def __init__(self, cmd: CmdBundle, loops, uid: int = 0):
        self.cmd = cmd
        self.loops = tuple(loops)
        self.uid = uid


class _Write:
    """A write to a bundle element or (array) output port."""

    __slots__ = ("target", "indices", "path", "loops", "desc")

    def __init__(self, target, indices, path, loops, desc):
        self.target = target
        self.indices = tuple(indices)
        self.path = path
        self.loops = tuple(loops)
        self.desc = desc


class ComponentChecker:
    """Checks a single ``comp`` component against its signature.

    ``obligation_store`` (optional) is a persistent verdict store with
    ``load(digest)``/``save(digest, status, model)`` — normally a
    :class:`repro.driver.cache.ObligationStore`; ``stats`` (optional) is
    a counter sink with ``bump(name, amount)`` — normally the session's
    :class:`repro.driver.cache.CacheStats`.  Both are duck-typed so this
    module never imports the driver.
    """

    def __init__(
        self,
        program: Program,
        component: Component,
        obligation_store=None,
        stats=None,
    ):
        if component.signature.kind != COMP:
            raise LilacError("only comp components have bodies to check")
        self.program = program
        self.component = component
        self.obligation_store = obligation_store
        self.stats = stats
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}
        self.sig = component.signature
        self.errors: List[TypeCheckError] = []
        self.obligations: List[Obligation] = []
        self.facts: List[smt.Term] = []
        self.param_env: Dict[str, smt.Term] = {}
        # Scoped namespace for instances/invocations/bundles: loop and
        # conditional bodies get their own scope, so sibling branches may
        # reuse names (exactly like the elaborator's dynamic scoping).
        self.scopes: List[Dict[str, object]] = [{}]
        self.instance_records: List[_Instance] = []
        self.invoke_records: List[_Invocation] = []
        self.writes: List[_Write] = []
        self.out_binds: Dict[str, List[Tuple[smt.Term, smt.Term]]] = {}
        self.loop_stack: List[_LoopFrame] = []
        self.path: smt.Term = smt.TRUE
        self.display: Dict[str, str] = {}
        self._fresh = itertools.count()
        self.delay_term: Optional[smt.Term] = None

    # ------------------------------------------------------------------
    # Encoding helpers.

    def _own_var(self, name: str) -> smt.Term:
        term = self.param_env.get(name)
        if term is None:
            raise LilacError(
                f"{self.sig.name}: unbound parameter {name!r}"
            )
        return term

    def _uf_app(self, comp_name: str, arg_terms, out: str, label: str) -> smt.Term:
        app = smt.App(f"{comp_name}.{out}", *arg_terms)
        self.display[app.sexpr()] = label
        return app

    def _scope_lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _scope_define(self, name: str, value) -> None:
        if name in self.scopes[-1]:
            raise LilacError(f"{self.sig.name}: duplicate definition {name!r}")
        self.scopes[-1][name] = value

    def _encode_inst_out(self, node) -> smt.Term:
        inst = self._scope_lookup(node.instance)
        if not isinstance(inst, _Instance):
            raise LilacError(
                f"{self.sig.name}: unknown instance {node.instance!r} in "
                f"parameter expression {node.instance}::{node.out}"
            )
        inst.sig.out_param(node.out)  # raises if absent
        return self._uf_app(
            inst.comp, inst.arg_terms, node.out, f"{inst.name}::{node.out}"
        )

    def _encode_paccess(self, node) -> smt.Term:
        comp = self.program.get(node.comp)
        sig = comp.signature
        if len(node.args) != len(sig.params):
            raise LilacError(
                f"{self.sig.name}: {node.comp} expects "
                f"{len(sig.params)} parameters, got {len(node.args)}"
            )
        arg_terms = [self.encode_pexpr(a) for a in node.args]
        self._obligate_input_where(sig, node.comp, arg_terms)
        self._assume_out_param_clauses(sig, node.comp, arg_terms)
        return self._uf_app(
            node.comp, arg_terms, node.out,
            f"{node.comp}[..]::{node.out}",
        )

    def encode_pexpr(self, expr: PExpr) -> smt.Term:
        return encode_pexpr_raw(
            expr,
            var_fn=self._own_var,
            access_fn=self._encode_paccess,
            inst_out_fn=self._encode_inst_out,
        )

    def encode_constraint(self, constraint: Constraint) -> smt.Term:
        return encode_constraint_raw(
            constraint,
            var_fn=self._own_var,
            access_fn=self._encode_paccess,
            inst_out_fn=self._encode_inst_out,
        )

    def _child_var_fn(self, inst: _Instance):
        sig = inst.sig
        params = {p.name: term for p, term in zip(sig.params, inst.arg_terms)}
        outs = {p.name for p in sig.out_params}

        def var_fn(name: str) -> smt.Term:
            if name in params:
                return params[name]
            if name in outs:
                return self._uf_app(
                    inst.comp, inst.arg_terms, name, f"{inst.name}::{name}"
                )
            raise LilacError(
                f"{inst.comp}: signature references unknown parameter {name!r}"
            )

        return var_fn

    def encode_child_expr(self, expr: PExpr, inst: _Instance) -> smt.Term:
        return encode_pexpr_raw(
            expr, var_fn=self._child_var_fn(inst), access_fn=self._encode_paccess
        )

    def _encode_sig_constraint_for(
        self, constraint: Constraint, sig: Signature, comp_name: str, arg_terms
    ) -> smt.Term:
        params = {p.name: term for p, term in zip(sig.params, arg_terms)}
        outs = {p.name for p in sig.out_params}

        def var_fn(name: str) -> smt.Term:
            if name in params:
                return params[name]
            if name in outs:
                return self._uf_app(comp_name, arg_terms, name, f"{comp_name}::{name}")
            raise LilacError(
                f"{comp_name}: where-clause references unknown parameter {name!r}"
            )

        return encode_constraint_raw(constraint, var_fn=var_fn)

    # ------------------------------------------------------------------
    # Facts and obligations.

    def _guard(self) -> smt.Term:
        bounds = [frame.bounds() for frame in self.loop_stack]
        return smt.And(self.path, *bounds)

    def add_fact(self, fact: smt.Term) -> None:
        guard = self._guard()
        self.facts.append(smt.Implies(guard, fact))

    def obligate(
        self, goal: smt.Term, message: str, kind: str, snapshot: bool = False
    ) -> None:
        facts_upto = len(self.facts) if snapshot else -1
        self.obligations.append(
            Obligation(goal, (), self._guard(), message, kind, facts_upto)
        )

    def obligate_raw(
        self,
        goal: smt.Term,
        path: smt.Term,
        extra_facts: Sequence[smt.Term],
        message: str,
        kind: str,
    ) -> None:
        self.obligations.append(
            Obligation(goal, tuple(extra_facts), path, message, kind)
        )

    def _assume_out_param_clauses(self, sig, comp_name: str, arg_terms) -> None:
        """Assume the where-clauses attached to a component's ``some``
        parameters (the Inst rule of Figure 7b)."""
        for out_param in sig.out_params:
            for clause in out_param.where:
                self.add_fact(
                    self._encode_sig_constraint_for(clause, sig, comp_name, arg_terms)
                )
        for clause in sig.where:
            # Signature-level where clauses constrain input parameters; once
            # instantiation arguments are checked they hold as facts too.
            self.add_fact(
                self._encode_sig_constraint_for(clause, sig, comp_name, arg_terms)
            )

    def _obligate_input_where(self, sig, comp_name: str, arg_terms) -> None:
        """Instantiation arguments must satisfy the component's where
        clauses (the ``pargs`` premise of the Inst rule)."""
        for clause in sig.where:
            try:
                encoded = self._encode_sig_constraint_for(
                    clause, sig, comp_name, arg_terms
                )
            except LilacError:
                continue  # clause mentions output params: assumed, not checked
            self.obligate(
                encoded,
                f"instantiation of {comp_name} violates where-clause",
                "where",
                snapshot=True,
            )

    # ------------------------------------------------------------------
    # Signal resolution.

    def resolve_arg(self, arg: Arg) -> ResolvedSignal:
        if isinstance(arg, ConstSig):
            width = self.encode_pexpr(arg.width) if arg.width is not None else None
            return ResolvedSignal(
                smt.IntVal(0), smt.IntVal(0), width,
                desc=f"constant {arg.value}", always=True,
            )
        return self.resolve_access(arg)

    def resolve_access(self, access: Access) -> ResolvedSignal:
        base, field = access.base, access.field
        if field is None:
            port = self._find_port(self.sig.inputs, base)
            if port is not None:
                return self._resolve_own_port(port, access, is_input=True)
            entry = self._scope_lookup(base)
            if isinstance(entry, _Bundle):
                return self._resolve_bundle_read(entry, access)
            out_port = self._find_port(self.sig.outputs, base)
            if out_port is not None:
                raise LilacError(
                    f"{self.sig.name}: cannot read output port {base!r}"
                )
            raise LilacError(f"{self.sig.name}: unknown signal {base!r}")
        invocation = self._scope_lookup(base)
        if not isinstance(invocation, _Invocation):
            raise LilacError(
                f"{self.sig.name}: unknown invocation {base!r} in {access!r}"
            )
        return self._resolve_invocation_port(invocation, field, access)

    def _find_port(self, ports, name) -> Optional[PortDef]:
        for port in ports:
            if port.name == name:
                return port
        return None

    def _resolve_own_port(
        self, port: PortDef, access: Access, is_input: bool
    ) -> ResolvedSignal:
        start = self.encode_pexpr(port.interval.start)
        end = self.encode_pexpr(port.interval.end)
        width = self.encode_pexpr(port.width)
        size = self.encode_pexpr(port.size) if port.size is not None else None
        if access.indices:
            if size is None:
                raise LilacError(
                    f"{self.sig.name}: scalar port {port.name!r} indexed"
                )
            self._obligate_index_bounds(access.indices, [size], str(access))
            size = None  # an indexed element is scalar
        return ResolvedSignal(
            start, end, width, size=size,
            desc=f"{port.name}: [G+{pretty(port.interval.start)}, "
            f"G+{pretty(port.interval.end)}]",
        )

    def _resolve_bundle_read(self, bundle: _Bundle, access: Access) -> ResolvedSignal:
        cmd = bundle.cmd
        size_terms = [self.encode_pexpr(s) for s in cmd.sizes]
        width = self.encode_pexpr(cmd.width)
        if not access.indices and len(cmd.index_vars) == 1:
            # Whole-bundle read: availability must hold for *every*
            # element; quantify with a fresh, bounds-guarded index.
            index = smt.Int(f"{cmd.index_vars[0]}@all{next(self._fresh)}")
            self.display[index.sexpr()] = cmd.index_vars[0]
            guard = smt.And(smt.Ge(index, 0), smt.Lt(index, size_terms[0]))
            start = self._encode_with_indices(
                cmd.interval.start, cmd.index_vars, [index]
            )
            end = self._encode_with_indices(
                cmd.interval.end, cmd.index_vars, [index]
            )
            return ResolvedSignal(
                start, end, width, size=size_terms[0], guard=guard,
                desc=f"{cmd.name}(all elements)",
            )
        if len(access.indices) != len(cmd.index_vars):
            raise LilacError(
                f"{self.sig.name}: bundle {cmd.name!r} expects "
                f"{len(cmd.index_vars)} indices, got {len(access.indices)}"
            )
        index_terms = [self.encode_pexpr(i) for i in access.indices]
        self._obligate_index_bounds(access.indices, size_terms, str(access))
        start = self._encode_with_indices(cmd.interval.start, cmd.index_vars, index_terms)
        end = self._encode_with_indices(cmd.interval.end, cmd.index_vars, index_terms)
        return ResolvedSignal(
            start, end, width,
            desc=f"{access!r}: [G+{pretty(cmd.interval.start)}, "
            f"G+{pretty(cmd.interval.end)}]",
        )

    def _encode_with_indices(self, expr: PExpr, index_vars, index_terms) -> smt.Term:
        mapping = dict(zip(index_vars, index_terms))

        def var_fn(name: str) -> smt.Term:
            if name in mapping:
                return mapping[name]
            return self._own_var(name)

        return encode_pexpr_raw(
            expr,
            var_fn=var_fn,
            access_fn=self._encode_paccess,
            inst_out_fn=self._encode_inst_out,
        )

    def _resolve_invocation_port(
        self, invocation: _Invocation, field: str, access: Access
    ) -> ResolvedSignal:
        inst = invocation.inst
        port = inst.sig.output(field)
        start = smt.Plus(
            invocation.offset, self.encode_child_expr(port.interval.start, inst)
        )
        end = smt.Plus(
            invocation.offset, self.encode_child_expr(port.interval.end, inst)
        )
        width = self.encode_child_expr(port.width, inst)
        size = (
            self.encode_child_expr(port.size, inst)
            if port.size is not None
            else None
        )
        if access.indices:
            if size is None:
                raise LilacError(
                    f"{self.sig.name}: scalar port {access!r} indexed"
                )
            self._obligate_index_bounds(access.indices, [size], str(access))
            size = None
        return ResolvedSignal(
            start, end, width, size=size,
            desc=f"{invocation.name}.{field}: available in "
            f"[G+{self._show(start)}, G+{self._show(end)}]",
        )

    def _obligate_index_bounds(self, indices, size_terms, desc: str) -> None:
        for index, size in zip(indices, size_terms):
            idx = (
                index
                if isinstance(index, smt.Term)
                else self._encode_with_loop_vars(index)
            )
            self.obligate(
                smt.And(smt.Ge(idx, 0), smt.Lt(idx, size)),
                f"index {desc} may fall outside [0, {self._show(size)})",
                "bounds",
            )

    def _encode_with_loop_vars(self, expr: PExpr) -> smt.Term:
        return self.encode_pexpr(expr)

    def _show(self, term: smt.Term) -> str:
        text = term.sexpr()
        for raw, nice in self.display.items():
            text = text.replace(raw, nice)
        return text

    # ------------------------------------------------------------------
    # Main walk.

    def check(self) -> CheckReport:
        try:
            self._setup_signature()
            self._walk(self.component.body)
            self._finalize()
        except LilacError as err:
            self.errors.append(TypeCheckError(self.sig.name, str(err), {}))
            return CheckReport(self.sig.name, self.errors, 0)
        start = time.perf_counter()
        self._discharge()
        self.timings["smt.discharge"] = time.perf_counter() - start
        return CheckReport(
            self.sig.name,
            self.errors,
            len(self.obligations),
            counters=dict(self.counters),
            timings=dict(self.timings),
        )

    def _setup_signature(self) -> None:
        for param in self.sig.params:
            self.param_env[param.name] = smt.Int(param.name)
        for out_param in self.sig.out_params:
            self.param_env[out_param.name] = smt.Int(out_param.name)
        for clause in self.sig.where:
            self.facts.append(self.encode_constraint(clause))
        self.delay_term = self.encode_pexpr(self.sig.event.delay)
        self.obligate(
            smt.Ge(self.delay_term, 1),
            f"event delay {pretty(self.sig.event.delay)} must be at least 1",
            "delay",
        )
        for port in self.sig.inputs + self.sig.outputs:
            if port.interface:
                continue
            start = self.encode_pexpr(port.interval.start)
            end = self.encode_pexpr(port.interval.end)
            self.obligate(
                smt.Lt(start, end),
                f"port {port.name!r} has an empty availability interval",
                "interval",
            )

    def _walk(self, cmds: Sequence[Cmd]) -> None:
        for cmd in cmds:
            self._walk_cmd(cmd)

    def _walk_cmd(self, cmd: Cmd) -> None:
        if isinstance(cmd, CmdInst):
            self._cmd_inst(cmd)
        elif isinstance(cmd, CmdInvoke):
            self._cmd_invoke(cmd)
        elif isinstance(cmd, CmdConnect):
            self._cmd_connect(cmd)
        elif isinstance(cmd, CmdLet):
            if cmd.name in self.param_env:
                raise LilacError(f"{self.sig.name}: duplicate let {cmd.name!r}")
            self.param_env[cmd.name] = self.encode_pexpr(cmd.expr)
        elif isinstance(cmd, CmdOutBind):
            self._cmd_out_bind(cmd)
        elif isinstance(cmd, CmdBundle):
            self._cmd_bundle(cmd)
        elif isinstance(cmd, CmdFor):
            self._cmd_for(cmd)
        elif isinstance(cmd, CmdIf):
            self._cmd_if(cmd)
        elif isinstance(cmd, CmdAssume):
            self.add_fact(self.encode_constraint(cmd.constraint))
        elif isinstance(cmd, CmdAssert):
            self.obligate(
                self.encode_constraint(cmd.constraint),
                f"assertion may not hold: {cmd.constraint!r}",
                "assert",
            )
        else:
            raise LilacError(f"unknown command {cmd!r}")

    def _cmd_inst(self, cmd: CmdInst) -> None:
        comp = self.program.get(cmd.comp)
        sig = comp.signature
        if len(cmd.args) != len(sig.params):
            raise LilacError(
                f"{self.sig.name}: {cmd.comp} expects {len(sig.params)} "
                f"parameters, got {len(cmd.args)}"
            )
        arg_terms = [self.encode_pexpr(a) for a in cmd.args]
        self._obligate_input_where(sig, cmd.comp, arg_terms)
        inst = _Instance(
            cmd.name, cmd.comp, sig, arg_terms,
            [frame.var for frame in self.loop_stack],
        )
        self._scope_define(cmd.name, inst)
        self.instance_records.append(inst)
        self._assume_out_param_clauses(sig, cmd.comp, arg_terms)

    def _cmd_invoke(self, cmd: CmdInvoke) -> None:
        inst = self._scope_lookup(cmd.instance)
        if not isinstance(inst, _Instance):
            raise LilacError(
                f"{self.sig.name}: invocation of unknown instance {cmd.instance!r}"
            )
        offset = self.encode_pexpr(cmd.offset)
        delay = self.encode_child_expr(inst.sig.event.delay, inst)
        invocation = _Invocation(
            cmd.name, inst, offset,
            list(self.loop_stack), self._guard(), delay,
        )
        self._scope_define(cmd.name, invocation)
        self.invoke_records.append(invocation)
        data_ports = [p for p in inst.sig.inputs if not p.interface]
        if len(cmd.args) != len(data_ports):
            raise LilacError(
                f"{self.sig.name}: {cmd.instance} expects {len(data_ports)} "
                f"arguments, got {len(cmd.args)}"
            )
        for port, arg in zip(data_ports, cmd.args):
            resolved = self.resolve_arg(arg)
            req_start = smt.Plus(offset, self.encode_child_expr(port.interval.start, inst))
            req_end = smt.Plus(offset, self.encode_child_expr(port.interval.end, inst))
            if not resolved.always:
                self.obligate(
                    smt.Implies(
                        resolved.guard,
                        smt.And(
                            smt.Le(resolved.start, req_start),
                            smt.Le(req_end, resolved.end),
                        ),
                    ),
                    f"Signal available in [G+{self._show(resolved.start)}, "
                    f"G+{self._show(resolved.end)}] but required in "
                    f"[G+{self._show(req_start)}, G+{self._show(req_end)}]"
                    f" ({resolved.desc} -> {cmd.instance}.{port.name})",
                    "latency",
                )
            self._obligate_width(
                resolved, self.encode_child_expr(port.width, inst),
                f"{cmd.instance}.{port.name}",
            )
            child_size = (
                self.encode_child_expr(port.size, inst)
                if port.size is not None
                else None
            )
            self._obligate_size(resolved, child_size, f"{cmd.instance}.{port.name}")
        self.obligate(
            smt.Le(delay, self.delay_term),
            f"instance {cmd.instance} (delay {self._show(delay)}) cannot be "
            f"pipelined inside {self.sig.name} "
            f"(delay {self._show(self.delay_term)})",
            "pipeline",
        )

    def _obligate_width(self, resolved: ResolvedSignal, expected, target: str) -> None:
        if resolved.width is None:
            return
        self.obligate(
            smt.Implies(resolved.guard, smt.Eq(resolved.width, expected)),
            f"width mismatch: {resolved.desc} has width "
            f"{self._show(resolved.width)} but {target} requires "
            f"{self._show(expected)}",
            "width",
        )

    def _obligate_size(self, resolved, expected, target: str) -> None:
        if expected is None and resolved.size is None:
            return
        if expected is None or resolved.size is None:
            raise LilacError(
                f"{self.sig.name}: array/scalar mismatch connecting to {target}"
            )
        self.obligate(
            smt.Eq(resolved.size, expected),
            f"array size mismatch at {target}",
            "width",
        )

    def _cmd_connect(self, cmd: CmdConnect) -> None:
        dst = cmd.dst
        resolved_src = self.resolve_arg(cmd.src)
        out_port = self._find_port(self.sig.outputs, dst.base)
        if dst.field is None and out_port is not None:
            start = self.encode_pexpr(out_port.interval.start)
            end = self.encode_pexpr(out_port.interval.end)
            size = (
                self.encode_pexpr(out_port.size)
                if out_port.size is not None
                else None
            )
            indices = ()
            if dst.indices:
                if size is None:
                    raise LilacError(
                        f"{self.sig.name}: scalar output {dst.base!r} indexed"
                    )
                index_terms = [self.encode_pexpr(i) for i in dst.indices]
                self._obligate_index_bounds(dst.indices, [size], str(dst))
                indices = tuple(index_terms)
            if not resolved_src.always:
                self.obligate(
                    smt.And(
                        smt.Le(resolved_src.start, start),
                        smt.Le(end, resolved_src.end),
                    ),
                    f"Signal available in [G+{self._show(resolved_src.start)}, "
                    f"G+{self._show(resolved_src.end)}] but output "
                    f"{dst.base!r} requires [G+{self._show(start)}, "
                    f"G+{self._show(end)}]",
                    "latency",
                )
            self._obligate_width(
                resolved_src, self.encode_pexpr(out_port.width), dst.base
            )
            self.writes.append(
                _Write(
                    ("out", dst.base), indices, self._guard(),
                    list(self.loop_stack), str(dst),
                )
            )
            return
        bundle = self._scope_lookup(dst.base)
        if dst.field is None and isinstance(bundle, _Bundle):
            cmdb = bundle.cmd
            if len(dst.indices) != len(cmdb.index_vars):
                raise LilacError(
                    f"{self.sig.name}: bundle {dst.base!r} expects "
                    f"{len(cmdb.index_vars)} indices"
                )
            index_terms = [self.encode_pexpr(i) for i in dst.indices]
            size_terms = [self.encode_pexpr(s) for s in cmdb.sizes]
            self._obligate_index_bounds(dst.indices, size_terms, str(dst))
            start = self._encode_with_indices(
                cmdb.interval.start, cmdb.index_vars, index_terms
            )
            end = self._encode_with_indices(
                cmdb.interval.end, cmdb.index_vars, index_terms
            )
            if not resolved_src.always:
                self.obligate(
                    smt.And(
                        smt.Le(resolved_src.start, start),
                        smt.Le(end, resolved_src.end),
                    ),
                    f"Signal available in [G+{self._show(resolved_src.start)}, "
                    f"G+{self._show(resolved_src.end)}] but bundle element "
                    f"{dst!r} requires [G+{self._show(start)}, "
                    f"G+{self._show(end)}]",
                    "latency",
                )
            self._obligate_width(
                resolved_src, self.encode_pexpr(cmdb.width), str(dst)
            )
            self.writes.append(
                _Write(
                    ("bundle", f"{dst.base}#{bundle.uid}"),
                    tuple(index_terms), self._guard(),
                    list(self.loop_stack), str(dst),
                )
            )
            return
        raise LilacError(
            f"{self.sig.name}: invalid connection target {dst!r} "
            "(must be an output port or bundle element)"
        )

    def _cmd_out_bind(self, cmd: CmdOutBind) -> None:
        out_param = self.sig.out_param(cmd.name)  # raises if undeclared
        term = self.encode_pexpr(cmd.expr)
        var = self.param_env[cmd.name]
        self.add_fact(smt.Eq(var, term))
        for clause in out_param.where:
            self.obligate(
                self.encode_constraint(clause),
                f"binding {cmd.name} := {pretty(cmd.expr)} violates its "
                "where-clause",
                "where",
            )
        self.out_binds.setdefault(cmd.name, []).append((term, self._guard()))

    def _cmd_bundle(self, cmd: CmdBundle) -> None:
        self._scope_define(
            cmd.name,
            _Bundle(
                cmd, [frame.var for frame in self.loop_stack],
                uid=next(self._fresh),
            ),
        )

    def _cmd_for(self, cmd: CmdFor) -> None:
        lo = self.encode_pexpr(cmd.lo)
        hi = self.encode_pexpr(cmd.hi)
        index = smt.Int(f"{cmd.var}!{next(self._fresh)}")
        self.display[index.sexpr()] = cmd.var
        frame = _LoopFrame(cmd.var, index, lo, hi)
        saved = self.param_env.get(cmd.var)
        self.param_env[cmd.var] = index
        self.loop_stack.append(frame)
        self.scopes.append({})
        try:
            self._walk(cmd.body)
        finally:
            self.scopes.pop()
            self.loop_stack.pop()
            if saved is None:
                self.param_env.pop(cmd.var, None)
            else:
                self.param_env[cmd.var] = saved

    def _cmd_if(self, cmd: CmdIf) -> None:
        cond = self.encode_constraint(cmd.cond)
        saved_path = self.path
        self.path = smt.And(saved_path, cond)
        self.scopes.append({})
        try:
            self._walk(cmd.then)
        finally:
            self.scopes.pop()
        self.path = smt.And(saved_path, smt.Not(cond))
        self.scopes.append({})
        try:
            self._walk(cmd.otherwise)
        finally:
            self.scopes.pop()
        self.path = saved_path

    # ------------------------------------------------------------------
    # Whole-component obligations generated after the walk.

    def _finalize(self) -> None:
        self._finalize_out_binds()
        self._finalize_resource_safety()
        self._finalize_write_conflicts()

    def _finalize_out_binds(self) -> None:
        for out_param in self.sig.out_params:
            if out_param.name not in self.out_binds:
                raise LilacError(
                    f"{self.sig.name}: output parameter {out_param.name} "
                    "is never bound"
                )
        driven = {
            write.target[1] for write in self.writes if write.target[0] == "out"
        }
        for port in self.sig.outputs:
            if port.interface:
                continue
            if port.name not in driven:
                raise LilacError(
                    f"{self.sig.name}: output port {port.name!r} is never driven"
                )

    def _rename_frames(self, frames) -> Tuple[Dict[smt.Term, smt.Term], List[smt.Term]]:
        """Fresh copies of loop index variables, with renamed bounds facts."""
        mapping: Dict[smt.Term, smt.Term] = {}
        bounds: List[smt.Term] = []
        for frame in frames:
            fresh = smt.Int(f"{frame.var}'{next(self._fresh)}")
            self.display[fresh.sexpr()] = f"{frame.var}'"
            mapping[frame.term] = fresh
            lo = smt.substitute(frame.lo, mapping)
            hi = smt.substitute(frame.hi, mapping)
            bounds.append(
                smt.And(smt.Le(lo, fresh), smt.Lt(fresh, hi))
            )
        return mapping, bounds

    def _finalize_resource_safety(self) -> None:
        by_instance: Dict[int, List[_Invocation]] = {}
        for invocation in self.invoke_records:
            by_instance.setdefault(id(invocation.inst), []).append(invocation)
        for records in by_instance.values():
            inst = records[0].inst
            decl_depth = len(inst.loops)
            for i, first in enumerate(records):
                for second in records[i:]:
                    self._pair_obligation(inst, first, second, decl_depth)

    def _pair_obligation(
        self, inst: _Instance, first: _Invocation, second: _Invocation, decl_depth: int
    ) -> None:
        """Resource-safety obligation for a pair of invocation records.

        The second record's loop indices (beyond the instance's declaration
        depth) are renamed so the pair ranges over *all* combinations of
        iterations; for a record paired with itself the renamed indices must
        differ (otherwise it is the same dynamic invocation).
        """
        same = first is second
        frames_to_rename = second.loops[decl_depth:]
        if same and not frames_to_rename:
            # A single static invocation; cross-window safety is covered by
            # the per-invocation d <= D obligation.
            return
        mapping, bounds2 = self._rename_frames(frames_to_rename)
        offset2 = smt.substitute(second.offset, mapping)
        path2 = smt.substitute(second.path, mapping)
        delay = first.delay
        extra = list(bounds2)
        if same:
            differ = smt.Or(
                *[smt.Ne(old, new) for old, new in mapping.items()]
            )
            extra.append(differ)
        if mapping:
            # Renamed copies of global facts so constraints involving the
            # renamed loop indices remain available.
            extra.extend(smt.substitute(fact, mapping) for fact in self.facts)
        gap_ok = smt.Or(
            smt.Ge(smt.Minus(first.offset, offset2), delay),
            smt.Ge(smt.Minus(offset2, first.offset), delay),
        )
        window = smt.Minus(self.delay_term, delay)
        fits = smt.And(
            smt.Le(smt.Minus(first.offset, offset2), window),
            smt.Le(smt.Minus(offset2, first.offset), window),
        )
        path = smt.And(first.path, path2)
        self.obligate_raw(
            gap_ok, path, extra,
            f"instance {inst.name} may be invoked at G+"
            f"{self._show(first.offset)} and G+{self._show(offset2)} with "
            f"spacing below its delay {self._show(delay)}",
            "resource",
        )
        self.obligate_raw(
            fits, path, extra,
            f"invocations of {inst.name} at G+{self._show(first.offset)} and "
            f"G+{self._show(offset2)} do not fit within the initiation "
            f"interval of {self.sig.name}",
            "pipeline",
        )

    def _finalize_write_conflicts(self) -> None:
        by_target: Dict[Tuple[str, str], List[_Write]] = {}
        for write in self.writes:
            by_target.setdefault(write.target, []).append(write)
        for target, records in by_target.items():
            for i, first in enumerate(records):
                for second in records[i:]:
                    self._write_pair_obligation(target, first, second)

    def _write_pair_obligation(self, target, first: _Write, second: _Write) -> None:
        same = first is second
        if same and not second.loops:
            return  # one static write
        mapping, bounds2 = self._rename_frames(second.loops)
        indices2 = tuple(smt.substitute(i, mapping) for i in second.indices)
        path2 = smt.substitute(second.path, mapping)
        extra = list(bounds2)
        if same:
            if not mapping:
                return
            extra.append(
                smt.Or(*[smt.Ne(old, new) for old, new in mapping.items()])
            )
        if mapping:
            extra.extend(smt.substitute(fact, mapping) for fact in self.facts)
        if first.indices:
            clash = smt.And(
                *[smt.Eq(a, b) for a, b in zip(first.indices, indices2)]
            )
            goal = smt.Not(clash)
        else:
            goal = smt.FALSE  # two scalar writes on overlapping paths
        path = smt.And(first.path, path2)
        self.obligate_raw(
            goal, path, extra,
            f"{first.desc} may be driven more than once "
            f"(conflicting write with {second.desc})",
            "conflict",
        )

    # ------------------------------------------------------------------
    # Discharge.

    def _discharge(self) -> None:
        """Discharge every obligation, reporting SAT results as errors.

        Two engines: the default *incremental* engine shares one
        :class:`repro.smt.IncrementalSolver` (preprocessing state,
        Tseitin encoding of the facts, learned theory lemmas) across all
        of the component's obligations; the one-shot engine builds a
        fresh solver per obligation over a symbol-pruned fact set.  Set
        ``REPRO_SMT_INCREMENTAL=0`` (or ``REPRO_SMT_LEGACY=1``) to force
        the one-shot path.
        """
        if use_incremental_discharge():
            self._discharge_incremental()
        else:
            self._discharge_oneshot()

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self.stats is not None:
            self.stats.bump(name, amount)

    def _time(self, name: str, start: float) -> None:
        self.timings[name] = (
            self.timings.get(name, 0.0) + time.perf_counter() - start
        )

    def _obligation_assertions(
        self, obligation: Obligation
    ) -> Tuple[List[smt.Term], int]:
        """The full assertion set the obligation's verdict is a function
        of (visible facts + local facts + path + negated goal)."""
        upto = (
            len(self.facts)
            if obligation.facts_upto < 0
            else obligation.facts_upto
        )
        assertions = (
            list(self.facts[:upto])
            + list(obligation.facts)
            + [obligation.path, smt.Not(obligation.goal)]
        )
        return assertions, upto

    def _cached_discharge(self, assertions, solve) -> "smt.Result":
        """Dispatch one obligation through the verdict caches.

        Layering: canonical digest → in-process memo → persistent store
        → ``solve()`` (the actual engine).  Verdicts are stored with
        models in canonical names; a hit translates the model back into
        this query's own names.  Legacy mode bypasses the caches so the
        benchmark baseline stays faithful to the pre-cache pipeline.
        """
        if _legacy_discharge():
            self._bump("smt.queries")
            start = time.perf_counter()
            result = solve()
            self._time("smt.solve", start)
            return result
        start = time.perf_counter()
        canon = smt.canonical_query(assertions, tag=_engine_tag())
        self._time("smt.canonicalize", start)
        entry = _OBLIGATION_MEMO.get(canon.digest)
        if entry is not None:
            self._bump("smt.memo_hit")
        elif self.obligation_store is not None:
            payload = self.obligation_store.load(canon.digest)
            if payload is not None:
                entry = (payload["status"], payload["model"])
                _OBLIGATION_MEMO[canon.digest] = entry
        if entry is None:
            self._bump("smt.queries")
            start = time.perf_counter()
            result = solve()
            self._time("smt.solve", start)
            canonical_model = smt.translate_model(
                result.model, canon.to_canonical
            )
            _OBLIGATION_MEMO[canon.digest] = (result.status, canonical_model)
            if self.obligation_store is not None:
                self.obligation_store.save(
                    canon.digest, result.status, canonical_model
                )
            return result
        status, canonical_model = entry
        return smt.Result(
            status, smt.translate_model(canonical_model, canon.to_original)
        )

    def _recovering_discharge(
        self, obligation, assertions, solve, on_degrade=None
    ) -> "smt.Result":
        """:meth:`_cached_discharge` plus the solver degradation rung.

        A :class:`~repro.smt.SolverError` (DPLL(T) conflict budget
        exhausted — genuinely, or injected through the
        ``solver.budget`` fault site) does not fail the obligation:
        the discharge degrades to a fresh one-shot solve of the same
        obligation (``degrade.solver`` counter) — for the incremental
        engine that is the incremental→one-shot ladder rung, for the
        one-shot engine a retry with a fresh budget.  Verdicts are
        identical either way (the engines are differentially proven
        equivalent), so degradation costs speed, never correctness.
        Only when the fallback *also* exhausts does the error escape —
        with the component name and canonical obligation digest
        attached, naming the one reproducible query that broke.
        """
        # Lazy import: the driver package imports this module at
        # import time, so a module-level import would be circular.
        from ...driver import faults

        def checked():
            if faults.should_fire("solver.budget", self.stats):
                raise smt.SolverError(
                    "DPLL(T) conflict budget exhausted (injected)"
                )
            return solve()

        try:
            return self._cached_discharge(assertions, checked)
        except smt.SolverError:
            self._bump("degrade.solver")
            warnings.warn(
                f"solver budget exhausted checking {self.sig.name}; "
                "degrading to a fresh one-shot solve",
                RuntimeWarning,
                stacklevel=2,
            )
            if on_degrade is not None:
                on_degrade()
            try:
                return self._cached_discharge(
                    assertions,
                    lambda: self._solve_obligation(obligation),
                )
            except smt.SolverError as error:
                digest = smt.canonical_query(
                    assertions, tag=_engine_tag()
                ).digest
                raise error.with_context(
                    component=self.sig.name, digest=digest
                ) from error

    def _solve_obligation(self, obligation: Obligation) -> "smt.Result":
        """One-shot discharge of a single obligation (also the reference
        engine for differential tests)."""
        visible = (
            self.facts
            if obligation.facts_upto < 0
            else self.facts[: obligation.facts_upto]
        )
        relevant = _prune_facts(
            list(visible) + list(obligation.facts),
            [obligation.goal, obligation.path],
        )
        solver = smt.Solver()
        solver.add(*relevant)
        solver.add(obligation.path)
        solver.add(smt.Not(obligation.goal))
        return solver.check()

    def _record_result(self, obligation: Obligation, result) -> None:
        if result.is_sat:
            counterexample = format_counterexample(
                result.model or {}, self.display
            )
            self.errors.append(
                TypeCheckError(
                    self.sig.name, obligation.message, counterexample,
                    kind=obligation.kind,
                )
            )

    def _discharge_oneshot(self) -> None:
        for obligation in self.obligations:
            assertions, _ = self._obligation_assertions(obligation)
            result = self._recovering_discharge(
                obligation,
                assertions,
                lambda obligation=obligation: self._solve_obligation(
                    obligation
                ),
            )
            self._record_result(obligation, result)

    def _discharge_incremental(self) -> None:
        """All obligations through one shared incremental solver.

        Obligations are processed in fact-visibility order — the shared
        solver asserts facts permanently, so an obligation must not run
        after facts beyond its snapshot are asserted (the snapshot
        exists precisely to keep where-clause proofs non-vacuous).  The
        solver itself is created lazily: a fully cache-served component
        never builds one.  Errors are still reported in obligation
        order.
        """
        total = len(self.facts)
        order = sorted(
            range(len(self.obligations)),
            key=lambda i: (
                total
                if self.obligations[i].facts_upto < 0
                else self.obligations[i].facts_upto,
                i,
            ),
        )
        engine: Dict[str, object] = {"solver": None, "asserted": 0}

        def solve_incremental(obligation: Obligation, upto: int):
            solver = engine["solver"]
            if solver is None:
                solver = engine["solver"] = smt.IncrementalSolver()
            if upto > engine["asserted"]:
                solver.add(*self.facts[engine["asserted"] : upto])
                engine["asserted"] = upto
            # Obligation-local facts (renamed copies for pair
            # obligations) are filtered by the same goal-anchored
            # relevance closure the one-shot engine applies; the solver
            # restricts the permanently asserted facts internally.
            kept = set(
                _prune_facts(
                    list(self.facts[:upto]) + list(obligation.facts),
                    [obligation.goal, obligation.path],
                )
            )
            extras = [fact for fact in obligation.facts if fact in kept]
            return solver.check(
                *extras, obligation.path, smt.Not(obligation.goal)
            )

        def reset_engine():
            # A budget exhaustion can leave the shared solver's
            # assumption stack mid-query; later obligations rebuild a
            # fresh incremental solver rather than trust it.
            engine["solver"] = None
            engine["asserted"] = 0

        results: Dict[int, object] = {}
        for index in order:
            obligation = self.obligations[index]
            assertions, upto = self._obligation_assertions(obligation)
            results[index] = self._recovering_discharge(
                obligation,
                assertions,
                lambda obligation=obligation, upto=upto: solve_incremental(
                    obligation, upto
                ),
                on_degrade=reset_engine,
            )
        for index, obligation in enumerate(self.obligations):
            self._record_result(obligation, results[index])


def _symbols(term: smt.Term):
    """Variable names and UF symbols occurring in a term.

    Built from the per-term cached ``free_vars``/``apps`` sets, so the
    repeated closures the discharge loop runs cost hash lookups, not
    term walks.
    """
    names = {v.name for v in smt.free_vars(term)}
    for app in smt.apps(term):
        names.add(f"@{app.name}")
    return names


def _prune_facts(facts, anchors):
    """Keep only facts (transitively) sharing symbols with the goal.

    Soundness: dropping facts can only make an obligation *harder* to
    prove (more SAT results), never mask an error.  In practice the
    closure keeps everything connected to the obligation and discards the
    bulk of unrelated where-clauses, which dominates solver time on
    larger components.
    """
    relevant = set()
    for anchor in anchors:
        relevant |= _symbols(anchor)
    remaining = [(fact, _symbols(fact)) for fact in facts]
    kept = []
    changed = True
    while changed:
        changed = False
        rest = []
        for fact, symbols in remaining:
            if symbols & relevant:
                kept.append(fact)
                relevant |= symbols
                changed = True
            else:
                rest.append((fact, symbols))
        remaining = rest
    return kept


def check_component(
    program: Program,
    name: str,
    obligation_store=None,
    stats=None,
) -> CheckReport:
    """Type check one component of a program."""
    component = program.get(name)
    if component.signature.kind != COMP:
        return CheckReport(name, [], 0)
    return ComponentChecker(
        program, component, obligation_store=obligation_store, stats=stats
    ).check()


def check_program(
    program: Program,
    raise_on_error: bool = True,
    obligation_store=None,
    stats=None,
) -> List[CheckReport]:
    """Type check every ``comp`` component in the program."""
    reports = []
    for component in program:
        reports.append(
            check_component(
                program,
                component.name,
                obligation_store=obligation_store,
                stats=stats,
            )
        )
    if raise_on_error:
        failures = [r for r in reports if r.errors]
        if failures:
            raise failures[0].errors[0]
    return reports

"""Lilac's SMT-backed type system (section 4 of the paper)."""

from .check import ComponentChecker, check_component, check_program
from .diagnostics import CheckReport, TypeCheckError

__all__ = [
    "ComponentChecker",
    "check_component",
    "check_program",
    "CheckReport",
    "TypeCheckError",
]

"""Diagnostics for the type checker: errors with counterexamples.

A failed obligation yields the paper's style of message, e.g.::

    Signal available in [G+Add::#L, G+Add::#L+1] but required in [G, G+1]
    counterexample: #W = 32, Add::#L = 2, Mul::#L = 1

The counterexample is a concrete parameterization (built from the SMT
model) under which the structural hazard manifests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ast import LilacError


class TypeCheckError(LilacError):
    """A single type error with an optional counterexample model."""

    def __init__(
        self,
        component: str,
        message: str,
        counterexample: Optional[Dict[str, int]] = None,
        kind: str = "error",
    ):
        self.component = component
        self.reason = message
        self.counterexample = counterexample or {}
        self.kind = kind
        super().__init__(self.render())

    def __reduce__(self):
        # Exception's default reduce replays ``args`` (the rendered
        # text) into __init__, which does not match this signature —
        # reports carrying errors must survive pickling for the disk
        # cache and the process-pool typecheck executor.
        return (
            TypeCheckError,
            (self.component, self.reason, self.counterexample, self.kind),
        )

    def render(self) -> str:
        lines = [f"[{self.component}] {self.reason}"]
        if self.counterexample:
            pairs = ", ".join(
                f"{name} = {value}"
                for name, value in sorted(self.counterexample.items())
            )
            lines.append(f"  counterexample: {pairs}")
        return "\n".join(lines)


class CheckReport:
    """Outcome of checking one component.

    ``counters``/``timings`` carry the discharge loop's solver
    statistics (query counts, cache hits, per-phase wall time) — the
    session aggregates them into ``--stats json``.
    """

    def __init__(
        self,
        component: str,
        errors: List[TypeCheckError],
        obligations: int,
        counters: Optional[Dict[str, int]] = None,
        timings: Optional[Dict[str, float]] = None,
    ):
        self.component = component
        self.errors = errors
        self.obligations = obligations
        self.counters = counters or {}
        self.timings = timings or {}

    @property
    def ok(self) -> bool:
        return not self.errors

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} error(s)"
        return f"CheckReport({self.component}: {status}, {self.obligations} obligations)"


def format_counterexample(
    model: Dict[str, int], display: Dict[str, str]
) -> Dict[str, int]:
    """Project an SMT model onto user-meaningful names.

    Keeps parameters (``#...``) and output-parameter applications, rewriting
    the latter through the display map (``(FPAdd.#L 32)`` -> ``Add::#L``).
    """
    out: Dict[str, int] = {}
    for name, value in model.items():
        if name.startswith("$") or name.startswith("@"):
            continue
        nice = name
        for raw, pretty_name in display.items():
            if raw in nice:
                nice = nice.replace(raw, pretty_name)
        if nice.startswith("(") and nice == name:
            # An application with no display entry: skip internals.
            if "." not in name:
                continue
        out[nice] = value
    return out

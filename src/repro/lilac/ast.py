"""Abstract syntax for the Lilac HDL (Figure 7 of the paper).

A Lilac *component* couples a signature — events, parameters, ports, output
parameters — with a body of commands.  Three component kinds exist:

* ``comp``   — implemented in Lilac (has a body);
* ``extern`` — implemented in Verilog, signature only;
* ``gen``    — produced by an external tool during elaboration; output
  parameters are bound from the tool's report (section 5).

Simplification relative to the paper (documented in DESIGN.md): each
component has exactly one event (all of the paper's examples use a single
event ``G``); availability intervals are ``[G+start, G+end)`` with ``start``
and ``end`` parameter expressions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..params import Constraint, PExpr, PInt, pretty, wrap


class LilacError(Exception):
    """Base class for all Lilac front-end errors."""


class Interval:
    """Availability interval ``[event+start, event+end)``."""

    __slots__ = ("start", "end")

    def __init__(self, start: Union[int, PExpr], end: Union[int, PExpr]):
        self.start = wrap(start)
        self.end = wrap(end)

    def __repr__(self):
        return f"[G+{pretty(self.start)}, G+{pretty(self.end)})"

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.start == other.start
            and self.end == other.end
        )


class PortDef:
    """A port in a signature.

    ``size`` is None for scalar ports; an expression for array ports like
    the Aetherling convolution's ``in[#N]`` (Figure 10a).  ``interface`` is
    True for the event-provider port (``val_i: interface[G]``).
    """

    __slots__ = ("name", "interval", "width", "size", "interface")

    def __init__(
        self,
        name: str,
        interval: Interval,
        width: Union[int, PExpr],
        size: Optional[Union[int, PExpr]] = None,
        interface: bool = False,
    ):
        self.name = name
        self.interval = interval
        self.width = wrap(width)
        self.size = wrap(size) if size is not None else None
        self.interface = interface

    def __repr__(self):
        suffix = f"[{pretty(self.size)}]" if self.size is not None else ""
        return f"{self.name}{suffix}: {self.interval!r} {pretty(self.width)}"


class EventDef:
    """The component's scheduling event and its delay (initiation interval)."""

    __slots__ = ("name", "delay")

    def __init__(self, name: str, delay: Union[int, PExpr]):
        self.name = name
        self.delay = wrap(delay)

    def __repr__(self):
        return f"<{self.name}:{pretty(self.delay)}>"


class ParamDef:
    """An input parameter (``[#W]``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return self.name


class OutParamDef:
    """An output parameter (``some #L where ...``) — the paper's novel
    construct for returning values from child modules to parents."""

    __slots__ = ("name", "where")

    def __init__(self, name: str, where: Sequence[Constraint] = ()):
        self.name = name
        self.where = list(where)

    def __repr__(self):
        return f"some {self.name}"


COMP = "comp"
EXTERN = "extern"
GEN = "gen"


class Signature:
    __slots__ = (
        "name",
        "kind",
        "gen_tool",
        "params",
        "event",
        "inputs",
        "outputs",
        "out_params",
        "where",
    )

    def __init__(
        self,
        name: str,
        params: Sequence[ParamDef] = (),
        event: Optional[EventDef] = None,
        inputs: Sequence[PortDef] = (),
        outputs: Sequence[PortDef] = (),
        out_params: Sequence[OutParamDef] = (),
        where: Sequence[Constraint] = (),
        kind: str = COMP,
        gen_tool: Optional[str] = None,
    ):
        self.name = name
        self.kind = kind
        self.gen_tool = gen_tool
        self.params = list(params)
        self.event = event if event is not None else EventDef("G", 1)
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.out_params = list(out_params)
        self.where = list(where)

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def out_param_names(self) -> List[str]:
        return [p.name for p in self.out_params]

    def input(self, name: str) -> PortDef:
        for port in self.inputs:
            if port.name == name:
                return port
        raise LilacError(f"{self.name}: no input port {name!r}")

    def output(self, name: str) -> PortDef:
        for port in self.outputs:
            if port.name == name:
                return port
        raise LilacError(f"{self.name}: no output port {name!r}")

    def out_param(self, name: str) -> OutParamDef:
        for param in self.out_params:
            if param.name == name:
                return param
        raise LilacError(f"{self.name}: no output parameter {name!r}")

    def __repr__(self):
        return f"Signature({self.kind} {self.name})"


# --------------------------------------------------------------------------
# Signal accesses.


class Access:
    """Reference to a signal: own port, invocation port, or bundle element.

    ``base`` names the owner (input port, invocation, bundle, or literal via
    :class:`ConstSig`); ``field`` selects an invocation's port; ``indices``
    index into array ports or bundles.
    """

    __slots__ = ("base", "field", "indices")

    def __init__(
        self,
        base: str,
        field: Optional[str] = None,
        indices: Sequence[Union[int, PExpr]] = (),
    ):
        self.base = base
        self.field = field
        self.indices = tuple(wrap(i) for i in indices)

    def __repr__(self):
        out = self.base
        if self.field:
            out += f".{self.field}"
        for index in self.indices:
            out += f"{{{pretty(index)}}}"
        return out

    def __eq__(self, other):
        return (
            isinstance(other, Access)
            and self.base == other.base
            and self.field == other.field
            and self.indices == other.indices
        )

    def __hash__(self):
        return hash((self.base, self.field, self.indices))


class ConstSig:
    """A constant driven onto a wire (``0`` as an invocation argument).

    ``width`` may be None, meaning the constant adapts to the width of the
    port it drives.
    """

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: Optional[Union[int, PExpr]] = None):
        self.value = value
        self.width = wrap(width) if width is not None else None

    def __repr__(self):
        return f"const({self.value})"


Arg = Union[Access, ConstSig]


# --------------------------------------------------------------------------
# Commands.


class Cmd:
    """Base class of body commands."""


class CmdInst(Cmd):
    """``x := new Comp[P*]``"""

    __slots__ = ("name", "comp", "args")

    def __init__(self, name: str, comp: str, args: Sequence[PExpr] = ()):
        self.name = name
        self.comp = comp
        self.args = [wrap(a) for a in args]

    def __repr__(self):
        args = ", ".join(pretty(a) for a in self.args)
        return f"{self.name} := new {self.comp}[{args}]"


class CmdInvoke(Cmd):
    """``x := Inst<G+P>(args)`` — schedule a use of an instance."""

    __slots__ = ("name", "instance", "offset", "args")

    def __init__(
        self,
        name: str,
        instance: str,
        offset: Union[int, PExpr],
        args: Sequence[Arg] = (),
    ):
        self.name = name
        self.instance = instance
        self.offset = wrap(offset)
        self.args = list(args)

    def __repr__(self):
        return f"{self.name} := {self.instance}<G+{pretty(self.offset)}>(...)"


class CmdConnect(Cmd):
    """``dst = src``"""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Access, src: Arg):
        self.dst = dst
        self.src = src

    def __repr__(self):
        return f"{self.dst!r} = {self.src!r}"


class CmdLet(Cmd):
    """``let #x = P``"""

    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: PExpr):
        self.name = name
        self.expr = wrap(expr)

    def __repr__(self):
        return f"let {self.name} = {pretty(self.expr)}"


class CmdOutBind(Cmd):
    """``#L := P`` — bind an output parameter in the body."""

    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: PExpr):
        self.name = name
        self.expr = wrap(expr)

    def __repr__(self):
        return f"{self.name} := {pretty(self.expr)}"


class CmdBundle(Cmd):
    """``bundle<#i,...> w[N,...]: [G+f(i), G+g(i)) width``

    A compile-time array of wires whose availability depends on the index
    (Figure 6).  ``sizes`` gives the extent in each dimension; ``start`` and
    ``end`` may mention the index variables.
    """

    __slots__ = ("name", "index_vars", "sizes", "interval", "width")

    def __init__(
        self,
        name: str,
        index_vars: Sequence[str],
        sizes: Sequence[Union[int, PExpr]],
        interval: Interval,
        width: Union[int, PExpr],
    ):
        if len(index_vars) != len(sizes):
            raise LilacError("bundle index/size arity mismatch")
        self.name = name
        self.index_vars = list(index_vars)
        self.sizes = [wrap(s) for s in sizes]
        self.interval = interval
        self.width = wrap(width)

    def __repr__(self):
        dims = ", ".join(pretty(s) for s in self.sizes)
        return f"bundle {self.name}[{dims}]"


class CmdFor(Cmd):
    """``for #k in P1..P2 { ... }`` (half-open upper bound)."""

    __slots__ = ("var", "lo", "hi", "body")

    def __init__(
        self,
        var: str,
        lo: Union[int, PExpr],
        hi: Union[int, PExpr],
        body: Sequence[Cmd],
    ):
        self.var = var
        self.lo = wrap(lo)
        self.hi = wrap(hi)
        self.body = list(body)

    def __repr__(self):
        return f"for {self.var} in {pretty(self.lo)}..{pretty(self.hi)}"


class CmdIf(Cmd):
    """Compile-time conditional."""

    __slots__ = ("cond", "then", "otherwise")

    def __init__(
        self,
        cond: Constraint,
        then: Sequence[Cmd],
        otherwise: Sequence[Cmd] = (),
    ):
        self.cond = cond
        self.then = list(then)
        self.otherwise = list(otherwise)

    def __repr__(self):
        return "if {...} else {...}"


class CmdAssume(Cmd):
    __slots__ = ("constraint",)

    def __init__(self, constraint: Constraint):
        self.constraint = constraint

    def __repr__(self):
        return f"assume {self.constraint!r}"


class CmdAssert(Cmd):
    __slots__ = ("constraint",)

    def __init__(self, constraint: Constraint):
        self.constraint = constraint

    def __repr__(self):
        return f"assert {self.constraint!r}"


class Component:
    """A complete Lilac component: signature plus (for ``comp``) a body."""

    __slots__ = ("signature", "body")

    def __init__(self, signature: Signature, body: Sequence[Cmd] = ()):
        self.signature = signature
        self.body = list(body)
        if signature.kind != COMP and self.body:
            raise LilacError(f"{signature.kind} component cannot have a body")

    @property
    def name(self) -> str:
        return self.signature.name

    def __repr__(self):
        return f"Component({self.signature.kind} {self.name})"


class Program:
    """A set of components; the unit of type checking and elaboration."""

    def __init__(self, components: Sequence[Component] = ()):
        self.components: Dict[str, Component] = {}
        for comp in components:
            self.define(comp)

    def define(self, comp: Component) -> None:
        if comp.name in self.components:
            raise LilacError(f"duplicate component {comp.name!r}")
        self.components[comp.name] = comp

    def get(self, name: str) -> Component:
        if name not in self.components:
            raise LilacError(f"unknown component {name!r}")
        return self.components[name]

    def has(self, name: str) -> bool:
        return name in self.components

    def merge(self, other: "Program") -> "Program":
        merged = Program()
        for comp in self.components.values():
            merged.define(comp)
        for comp in other.components.values():
            if comp.name not in merged.components:
                merged.define(comp)
        return merged

    def __iter__(self):
        return iter(self.components.values())

    def __len__(self):
        return len(self.components)

"""A Python eDSL for constructing Lilac components.

The textual frontend (``repro.lilac.parser``) is the primary surface, but
programmatic construction is convenient for generators, the standard
library, and tests::

    fpu = ComponentBuilder("FPU", params=["#W"], delay=1)
    fpu.input("op", width=1)
    fpu.input("l", width="#W")
    out = fpu.some("#L", where=[P("#L") >= 1])
    add = fpu.new("Add", "FPAdd", ["#W"])
    inv = fpu.invoke("add", "Add", at=0, args=[fpu.port("l"), fpu.port("r")])
    fpu.connect(fpu.port("o"), inv.out("o"))
    component = fpu.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..params import Constraint, P, PExpr, wrap
from .ast import (
    Access,
    Arg,
    Cmd,
    CmdAssert,
    CmdAssume,
    CmdBundle,
    CmdConnect,
    CmdFor,
    CmdIf,
    CmdInst,
    CmdInvoke,
    CmdLet,
    CmdOutBind,
    COMP,
    Component,
    ConstSig,
    EventDef,
    EXTERN,
    GEN,
    Interval,
    LilacError,
    OutParamDef,
    ParamDef,
    PortDef,
    Signature,
)


class InvocationHandle:
    """Returned by ``invoke``; provides access to the invocation's ports."""

    def __init__(self, name: str):
        self.name = name

    def out(self, port: str = "out") -> Access:
        return Access(self.name, field=port)

    def port(self, port: str, *indices) -> Access:
        return Access(self.name, field=port, indices=indices)


class _BodyScope:
    """Collects commands; nested scopes implement for/if bodies."""

    def __init__(self):
        self.cmds: List[Cmd] = []


class ComponentBuilder:
    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        event: str = "G",
        delay: Union[int, PExpr] = 1,
        kind: str = COMP,
        gen_tool: Optional[str] = None,
    ):
        self._sig = Signature(
            name,
            params=[ParamDef(p) for p in params],
            event=EventDef(event, delay),
            kind=kind,
            gen_tool=gen_tool,
        )
        self._scopes: List[_BodyScope] = [_BodyScope()]

    # ------------------------------------------------------------------
    # Signature construction.

    def input(
        self,
        name: str,
        width: Union[int, str, PExpr],
        avail: Sequence[Union[int, str, PExpr]] = (0, 1),
        size: Optional[Union[int, str, PExpr]] = None,
    ) -> "ComponentBuilder":
        interval = Interval(wrap(avail[0]), wrap(avail[1]))
        self._sig.inputs.append(PortDef(name, interval, wrap(width), size=size))
        return self

    def interface_port(self, name: str = "val_i") -> "ComponentBuilder":
        self._sig.inputs.append(
            PortDef(name, Interval(0, 1), 1, interface=True)
        )
        return self

    def output(
        self,
        name: str,
        width: Union[int, str, PExpr],
        avail: Sequence[Union[int, str, PExpr]],
        size: Optional[Union[int, str, PExpr]] = None,
    ) -> "ComponentBuilder":
        interval = Interval(wrap(avail[0]), wrap(avail[1]))
        self._sig.outputs.append(PortDef(name, interval, wrap(width), size=size))
        return self

    def some(
        self, name: str, where: Sequence[Constraint] = ()
    ) -> "ComponentBuilder":
        """Declare an output parameter (``with { some #L where ... }``)."""
        self._sig.out_params.append(OutParamDef(name, where))
        return self

    def where(self, *constraints: Constraint) -> "ComponentBuilder":
        self._sig.where.extend(constraints)
        return self

    # ------------------------------------------------------------------
    # Access helpers.

    def port(self, name: str, *indices) -> Access:
        """Reference one of this component's own ports."""
        return Access(name, indices=indices)

    def bundle_at(self, name: str, *indices) -> Access:
        return Access(name, indices=indices)

    @staticmethod
    def const(value: int, width: Union[int, PExpr] = 32) -> ConstSig:
        return ConstSig(value, width)

    # ------------------------------------------------------------------
    # Body commands.

    def _emit(self, cmd: Cmd) -> Cmd:
        self._scopes[-1].cmds.append(cmd)
        return cmd

    def new(
        self, name: str, comp: str, args: Sequence[Union[int, str, PExpr]] = ()
    ) -> str:
        """``name := new comp[args]``; returns the instance name."""
        self._emit(CmdInst(name, comp, [wrap(a) for a in args]))
        return name

    def invoke(
        self,
        name: str,
        instance: str,
        at: Union[int, str, PExpr],
        args: Sequence[Arg] = (),
    ) -> InvocationHandle:
        self._emit(CmdInvoke(name, instance, wrap(at), list(args)))
        return InvocationHandle(name)

    def new_invoke(
        self,
        name: str,
        comp: str,
        params: Sequence[Union[int, str, PExpr]],
        at: Union[int, str, PExpr],
        args: Sequence[Arg] = (),
    ) -> InvocationHandle:
        """The paper's combined form ``mx := new Mux[#W]<G>(...)``."""
        inst = f"{name}!inst"
        self.new(inst, comp, params)
        return self.invoke(name, inst, at, args)

    def connect(self, dst: Access, src: Arg) -> "ComponentBuilder":
        self._emit(CmdConnect(dst, src))
        return self

    def let(self, name: str, expr: Union[int, str, PExpr]) -> PExpr:
        self._emit(CmdLet(name, wrap(expr)))
        return P(name)

    def bind_out(self, name: str, expr: Union[int, str, PExpr]) -> "ComponentBuilder":
        self._emit(CmdOutBind(name, wrap(expr)))
        return self

    def bundle(
        self,
        name: str,
        index_vars: Sequence[str],
        sizes: Sequence[Union[int, str, PExpr]],
        avail: Sequence[Union[int, str, PExpr]],
        width: Union[int, str, PExpr],
    ) -> str:
        interval = Interval(wrap(avail[0]), wrap(avail[1]))
        self._emit(
            CmdBundle(name, index_vars, [wrap(s) for s in sizes], interval, wrap(width))
        )
        return name

    def assume(self, constraint: Constraint) -> "ComponentBuilder":
        self._emit(CmdAssume(constraint))
        return self

    def check(self, constraint: Constraint) -> "ComponentBuilder":
        self._emit(CmdAssert(constraint))
        return self

    # Structured scopes ---------------------------------------------------

    def for_loop(self, var: str, lo, hi) -> "_ForContext":
        return _ForContext(self, var, wrap(lo), wrap(hi))

    def if_block(self, cond: Constraint) -> "_IfContext":
        return _IfContext(self, cond)

    # ------------------------------------------------------------------

    def build(self) -> Component:
        if len(self._scopes) != 1:
            raise LilacError("unclosed for/if scope in builder")
        return Component(self._sig, self._scopes[0].cmds)


class _ForContext:
    def __init__(self, builder: ComponentBuilder, var: str, lo: PExpr, hi: PExpr):
        self.builder = builder
        self.var = var
        self.lo = lo
        self.hi = hi

    def __enter__(self) -> PExpr:
        self.builder._scopes.append(_BodyScope())
        return P(self.var)

    def __exit__(self, exc_type, exc, tb):
        scope = self.builder._scopes.pop()
        if exc_type is None:
            self.builder._emit(CmdFor(self.var, self.lo, self.hi, scope.cmds))
        return False


class _IfContext:
    def __init__(self, builder: ComponentBuilder, cond: Constraint):
        self.builder = builder
        self.cond = cond
        self.then_cmds: Optional[List[Cmd]] = None

    def __enter__(self) -> "_IfContext":
        self.builder._scopes.append(_BodyScope())
        return self

    def __exit__(self, exc_type, exc, tb):
        scope = self.builder._scopes.pop()
        if exc_type is None:
            if self.then_cmds is None:
                self.builder._emit(CmdIf(self.cond, scope.cmds))
            else:
                self.builder._emit(CmdIf(self.cond, self.then_cmds, scope.cmds))
        return False

    def otherwise(self) -> "_IfContext":
        """Close the then-branch and open the else-branch::

            with fpu.if_block(c) as blk:
                ...then commands...
                blk = blk.otherwise()
                ...else commands...
        """
        scope = self.builder._scopes.pop()
        self.then_cmds = scope.cmds
        self.builder._scopes.append(_BodyScope())
        return self


def extern_component(
    name: str,
    params: Sequence[str] = (),
    delay: Union[int, PExpr] = 1,
    inputs: Sequence[PortDef] = (),
    outputs: Sequence[PortDef] = (),
    out_params: Sequence[OutParamDef] = (),
    where: Sequence[Constraint] = (),
) -> Component:
    """Declare an external (Verilog-backed) component."""
    sig = Signature(
        name,
        params=[ParamDef(p) for p in params],
        event=EventDef("G", delay),
        inputs=list(inputs),
        outputs=list(outputs),
        out_params=list(out_params),
        where=list(where),
        kind=EXTERN,
    )
    return Component(sig)


def gen_component(
    tool: str,
    name: str,
    params: Sequence[str] = (),
    delay: Union[int, PExpr] = 1,
    inputs: Sequence[PortDef] = (),
    outputs: Sequence[PortDef] = (),
    out_params: Sequence[OutParamDef] = (),
    where: Sequence[Constraint] = (),
) -> Component:
    """Declare a generator-produced component (``gen "tool" comp ...``)."""
    sig = Signature(
        name,
        params=[ParamDef(p) for p in params],
        event=EventDef("G", delay),
        inputs=list(inputs),
        outputs=list(outputs),
        out_params=list(out_params),
        where=list(where),
        kind=GEN,
        gen_tool=tool,
    )
    return Component(sig)

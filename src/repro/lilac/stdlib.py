"""Lilac's standard library.

Written in Lilac's concrete syntax and parsed by the frontend (the same
path user designs take).  ``extern`` components are backed by RTL
primitives during lowering; the mapping lives in ``EXTERN_PRIMS`` and is
consumed by :mod:`repro.lilac.lower`.

The library mirrors what the paper's evaluation relies on: registers,
muxes, combinational arithmetic, the ``Shift`` pipeline balancer
(Figure 6), the ``Max`` parameter function (section 3.3), and a handful of
small structural helpers used by the larger designs.
"""

from __future__ import annotations

from .ast import Program
from .parser import parse_program

STDLIB_SOURCE = """
// ---------------------------------------------------------------------
// Sequential primitives.

// A single register: output is the input delayed by one cycle.
extern comp Reg[#W]<G:1>(in: [G, G+1] #W) -> (out: [G+1, G+2] #W);

// A register with an explicit hold: the output stays valid for #H cycles.
// The enable pulse (interface port) latches the input; the register may
// not be re-loaded for #H cycles, hence delay #H.
extern comp RegHold[#W, #H]<G:#H>(en_i: interface[G], in: [G, G+1] #W)
    -> (out: [G+1, G+1+#H] #W) where #H >= 1;

// A double-buffered delay for array signals: presents the input #T
// cycles later using two alternating register banks instead of a shift
// chain.  Correct as long as at most two transactions are in flight,
// hence the delay (initiation interval) of (#T+2)/2.
extern comp DelayBuf[#W, #Z, #T]<G:(#T+2)/2>(
    en_i: interface[G], in[#Z]: [G, G+1] #W
) -> (out[#Z]: [G+#T, G+#T+1] #W) where #T >= 1, #Z >= 1;

// ---------------------------------------------------------------------
// Combinational primitives (zero-latency, fully pipelined).

extern comp Mux[#W]<G:1>(sel: [G, G+1] 1, a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp Add[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp Sub[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp MulComb[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp AndGate[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp OrGate[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp XorGate[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W);

extern comp NotGate[#W]<G:1>(a: [G, G+1] #W) -> (out: [G, G+1] #W);

extern comp ShiftRight[#W, #S]<G:1>(a: [G, G+1] #W) -> (out: [G, G+1] #W);

extern comp ShiftLeft[#W, #S]<G:1>(a: [G, G+1] #W) -> (out: [G, G+1] #W);

extern comp Eq[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] 1);

extern comp Lt[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] 1);

extern comp Slice[#W, #OW, #LSB]<G:1>(a: [G, G+1] #W)
    -> (out: [G, G+1] #OW) where #OW >= 1;

extern comp Concat[#WA, #WB]<G:1>(a: [G, G+1] #WA, b: [G, G+1] #WB)
    -> (out: [G, G+1] #WA+#WB);

extern comp ConstVal[#W, #V]<G:1>() -> (out: [G, G+1] #W);

// ---------------------------------------------------------------------
// Parameter functions: components with empty datapaths used as pure
// functions over parameters (section 3.3 of the paper).

comp Max[#A, #B]<G:1>() -> ()
    with { some #Out where #Out >= #A, #Out >= #B; } {
  #Out := (#A >= #B ? #A : #B);
}

comp Max3[#A, #B, #C]<G:1>() -> ()
    with { some #Out where #Out >= #A, #Out >= #B, #Out >= #C; } {
  #Out := (#A >= #B & #A >= #C ? #A : (#B >= #C ? #B : #C));
}

comp Min[#A, #B]<G:1>() -> ()
    with { some #Out where #Out <= #A, #Out <= #B; } {
  #Out := (#A <= #B ? #A : #B);
}

// ---------------------------------------------------------------------
// Shift register (Figure 6): delays a signal by #N cycles.

comp Shift[#W, #N]<G:1>(input: [G, G+1] #W)
    -> (out: [G+#N, G+#N+1] #W) where #N >= 0 {
  bundle<#i> w[#N+1]: [G+#i, G+#i+1] #W;
  w{0} = input;
  for #k in 0..#N {
    r := new Reg[#W]<G+#k>(w{#k});
    w{#k+1} = r.out;
  }
  out = w{#N};
}

// A shift register that also widens the availability window of its final
// stage, used when a downstream module needs the value held stable.
comp ShiftHold[#W, #N, #H]<G:#H>(input: [G, G+1] #W)
    -> (out: [G+#N, G+#N+#H] #W) where #N >= 1, #H >= 1 {
  bundle<#i> w[#N]: [G+#i, G+#i+1] #W;
  w{0} = input;
  for #k in 0..#N-1 {
    r := new Reg[#W]<G+#k>(w{#k});
    w{#k+1} = r.out;
  }
  hold := new RegHold[#W, #H]<G+#N-1>(w{#N-1});
  out = hold.out;
}

// ---------------------------------------------------------------------
// Reduction tree: sums #N inputs pairwise in log2(#N) combinational
// levels (used by convolution kernels).  The tree is unrolled over a
// bundle whose rows hold the partial sums of each level.

comp AddTree2[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (out: [G, G+1] #W) {
  s := new Add[#W]<G>(a, b);
  out = s.out;
}

comp AddTree4[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W,
                       c: [G, G+1] #W, d: [G, G+1] #W)
    -> (out: [G, G+1] #W) {
  s0 := new Add[#W]<G>(a, b);
  s1 := new Add[#W]<G>(c, d);
  s2 := new Add[#W]<G>(s0.out, s1.out);
  out = s2.out;
}

// ---------------------------------------------------------------------
// Pipelined multiply-accumulate: one multiply, one add, one register.

comp Mac[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W, acc: [G, G+1] #W)
    -> (out: [G+1, G+2] #W) {
  m := new MulComb[#W]<G>(a, b);
  s := new Add[#W]<G>(m.out, acc);
  r := new Reg[#W]<G>(s.out);
  out = r.out;
}
"""

# Mapping from extern component names to RTL primitive builders; consumed
# by repro.lilac.lower.  Values are (prim_kind, latency) descriptors; the
# lowering resolves parameter values before building cells.
EXTERN_PRIMS = {
    "Reg": ("reg", 1),
    "RegHold": ("reg_hold", 1),
    "DelayBuf": ("delay_buf", 1),
    "Mux": ("mux", 0),
    "Add": ("add", 0),
    "Sub": ("sub", 0),
    "MulComb": ("mul", 0),
    "AndGate": ("and", 0),
    "OrGate": ("or", 0),
    "XorGate": ("xor", 0),
    "NotGate": ("not", 0),
    "ShiftRight": ("shr", 0),
    "ShiftLeft": ("shl", 0),
    "Eq": ("eq", 0),
    "Lt": ("lt", 0),
    "Slice": ("slice", 0),
    "Concat": ("concat", 0),
    "ConstVal": ("const", 0),
}

_CACHE = None


def standard_library() -> Program:
    """Parse (once) and return the standard library program."""
    global _CACHE
    if _CACHE is None:
        _CACHE = parse_program(STDLIB_SOURCE)
    return _CACHE


def stdlib_program(*extra_sources: str) -> Program:
    """The standard library merged with additional Lilac source texts."""
    merged = Program()
    for comp in standard_library():
        merged.define(comp)
    for source in extra_sources:
        for comp in parse_program(source):
            if not merged.has(comp.name):
                merged.define(comp)
    return merged

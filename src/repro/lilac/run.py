"""Transaction-level harness for simulating elaborated designs.

An elaborated component has a static schedule: inputs are required in
known cycle windows relative to each ``go`` event, outputs appear at known
offsets, and events may fire every ``delay`` (initiation interval) cycles.
The runner drives the RTL simulator accordingly, so tests and examples can
speak in terms of transactions rather than cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..rtl import Simulator
from .elaborate.elaborator import ElabResult

Value = Union[int, Sequence[int]]


def pack_elements(values: Sequence[int], width: int) -> int:
    """Pack per-element values into one wide integer (element 0 at LSB)."""
    packed = 0
    mask = (1 << width) - 1
    for index, value in enumerate(values):
        packed |= (int(value) & mask) << (index * width)
    return packed


def unpack_elements(packed: int, width: int, size: int) -> List[int]:
    mask = (1 << width) - 1
    return [(packed >> (index * width)) & mask for index in range(size)]


class TransactionRunner:
    """Feeds transactions into an elaborated design and collects results."""

    def __init__(self, elab: ElabResult):
        self.elab = elab
        self.simulator = Simulator(elab.module)
        self.go_name = elab.go_port or "go"

    def run(
        self, transactions: List[Dict[str, Value]], spacing: Optional[int] = None
    ) -> List[Dict[str, Value]]:
        """Run transactions spaced ``spacing`` (default: the design's II).

        Each transaction maps input port names to values (lists for array
        ports).  Returns one output map per transaction, with array ports
        unpacked back into lists.
        """
        elab = self.elab
        interval = spacing if spacing is not None else elab.delay
        if interval < elab.delay:
            raise ValueError(
                f"spacing {interval} below initiation interval {elab.delay}"
            )
        data_inputs = [p for p in elab.inputs if not p.interface]
        data_outputs = [p for p in elab.outputs if not p.interface]
        events = [i * interval for i in range(len(transactions))]
        max_output = max((p.end for p in data_outputs), default=1)
        total_cycles = (events[-1] if events else 0) + max_output + 1

        # Schedule of input values per cycle.
        drive: List[Dict[str, int]] = [dict() for _ in range(total_cycles)]
        for event, txn in zip(events, transactions):
            drive[event][self.go_name] = 1
            for port in data_inputs:
                if port.name not in txn:
                    raise ValueError(
                        f"transaction missing input {port.name!r}"
                    )
                value = txn[port.name]
                if port.size is not None:
                    if not isinstance(value, (list, tuple)):
                        raise ValueError(
                            f"input {port.name!r} is an array port; "
                            "provide a list"
                        )
                    if len(value) != port.size:
                        raise ValueError(
                            f"input {port.name!r} expects {port.size} "
                            f"elements, got {len(value)}"
                        )
                    packed = pack_elements(value, port.width)
                else:
                    packed = int(value)
                for cycle in range(event + port.start, event + port.end):
                    drive[cycle][port.name] = packed

        # Run the clock and sample outputs at their scheduled cycles.
        sample_at: Dict[int, List[int]] = {}
        for index, event in enumerate(events):
            for port in data_outputs:
                sample_at.setdefault(event + port.start, []).append(index)
        results: List[Dict[str, Value]] = [dict() for _ in transactions]
        for cycle in range(total_cycles):
            inputs = {self.go_name: 0}
            inputs.update(drive[cycle])
            self.simulator.poke(inputs)
            self.simulator.evaluate()
            for txn_index in sample_at.get(cycle, ()):  # sample outputs
                event = events[txn_index]
                for port in data_outputs:
                    if event + port.start != cycle:
                        continue
                    raw = self.simulator.peek(port.name)
                    if port.size is not None:
                        results[txn_index][port.name] = unpack_elements(
                            raw, port.width, port.size
                        )
                    else:
                        results[txn_index][port.name] = raw
            self.simulator.tick()
        return results


def run_transactions(
    elab: ElabResult,
    transactions: List[Dict[str, Value]],
    spacing: Optional[int] = None,
) -> List[Dict[str, Value]]:
    """One-shot convenience wrapper around :class:`TransactionRunner`."""
    return TransactionRunner(elab).run(transactions, spacing)

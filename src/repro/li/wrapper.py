"""Ready--valid (latency-insensitive) wrapper around latency-sensitive
modules.

This is the baseline design style the paper compares against (section
2.2): the LS core keeps its static schedule internally, while the wrapper
adds

* an input handshake (``in_valid``/``in_ready``) with an initiation-
  interval guard,
* a valid shift chain tracking in-flight transactions through the
  pipeline,
* an output FIFO plus a credit counter so results are never dropped even
  when the consumer stalls.

All of it is pure overhead when producer and consumer timing is statically
known — exactly the cost Table 1 and Figure 13 quantify.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..lilac.elaborate import ElabResult
from ..rtl import Module, Net
from .control import bit_and, credit_counter, spacing_guard, valid_chain


class LIWrapped:
    """Handle to a wrapped module: the RTL plus interface metadata."""

    def __init__(self, module: Module, child: ElabResult, fifo_depth: int):
        self.module = module
        self.child = child
        self.fifo_depth = fifo_depth

    @property
    def name(self) -> str:
        return self.module.name


def wrap_latency_sensitive(
    child: ElabResult,
    fifo_depth: Optional[int] = None,
    name: Optional[str] = None,
) -> LIWrapped:
    """Wrap an elaborated LS component in a ready--valid interface.

    The wrapper presents one input channel (all data inputs transfer
    together on ``in_valid & in_ready``) and one output channel.

    ``fifo_depth`` defaults to ``latency + 1`` so the credit system can
    keep the pipeline full — the reason LI register cost grows with
    pipeline depth (Table 1's 3-4x register overhead).
    """
    latency = child.latency
    interval = child.delay
    if fifo_depth is None:
        fifo_depth = max(2, latency + 1)
    m = Module(name or f"{child.name}_li")
    in_valid = m.add_input("in_valid", 1)
    in_ready = m.add_output("in_ready", 1)
    out_ready = m.add_input("out_ready", 1)
    out_valid = m.add_output("out_valid", 1)

    data_inputs = [p for p in child.inputs if not p.interface]
    data_outputs = [p for p in child.outputs if not p.interface]
    input_nets: Dict[str, Net] = {}
    for port in data_inputs:
        input_nets[port.name] = m.add_input(
            port.name, port.width * (port.size or 1)
        )
    output_nets: Dict[str, Net] = {}
    for port in data_outputs:
        output_nets[port.name] = m.add_output(
            port.name, port.width * (port.size or 1)
        )

    # Input skid buffer: isolates the producer's handshake timing from
    # the issue logic (standard ready/valid practice; a real source of
    # the LI register overhead the paper measures).
    in_bus_width = sum(
        p.width * (p.size or 1) for p in data_inputs
    ) or 1
    if data_inputs:
        in_bus = input_nets[data_inputs[0].name]
        for port in data_inputs[1:]:
            widened = m.fresh_net(
                in_bus.width + port.width * (port.size or 1), "ibus"
            )
            m.add_cell(
                "concat", {"a": input_nets[port.name], "b": in_bus, "out": widened}
            )
            in_bus = widened
    else:
        in_bus = m.constant(0, 1)
    staged_bus = m.fresh_net(in_bus_width, "staged")
    staged_valid = m.fresh_net(1, "staged_valid")
    skid_pop = m.fresh_net(1, "skid_pop")
    m.add_cell(
        "fifo",
        {
            "in_data": in_bus,
            "in_valid": in_valid,
            "in_ready": in_ready,
            "out_data": staged_bus,
            "out_valid": staged_valid,
            "out_ready": skid_pop,
        },
        {"depth": 2},
    )
    staged_inputs: Dict[str, Net] = {}
    offset_bits = 0
    for port in data_inputs:
        width_bits = port.width * (port.size or 1)
        sliced = m.fresh_net(width_bits, f"st_{port.name}")
        m.add_cell(
            "slice", {"a": staged_bus, "out": sliced}, {"lsb": offset_bits}
        )
        staged_inputs[port.name] = sliced
        offset_bits += width_bits

    # Issue control: a transaction starts when staged data is available,
    # credits exist, and the child's initiation interval allows it.  The
    # guards read only register state, so feeding `issue` back is
    # loop-free.
    issue_feedback = m.fresh_net(1, "issue")
    ii_ready = spacing_guard(m, interval, issue_feedback)
    pop = m.fresh_net(1, "pop")
    _credits, has_credit = credit_counter(m, fifo_depth, issue_feedback, pop)
    ready_net = bit_and(m, ii_ready, has_credit)
    issue = bit_and(m, staged_valid, ready_net)
    m.add_cell("slice", {"a": issue, "out": issue_feedback}, {"lsb": 0})
    m.add_cell("slice", {"a": issue, "out": skid_pop}, {"lsb": 0})

    # Hold registers when the child needs inputs stable for several cycles
    # (the paper: "we plumb the #H parameter through the hierarchy and use
    # it to latch the input value").
    hold = max((p.end - p.start) for p in data_inputs) if data_inputs else 1
    child_pins: Dict[str, Net] = {}
    stall_latency = 0
    if hold > 1:
        stall_latency = 1  # child sees latched inputs one cycle later
        for port in data_inputs:
            latched = m.fresh_net(
                port.width * (port.size or 1), f"{port.name}_hold"
            )
            m.add_cell(
                "regen",
                {"d": staged_inputs[port.name], "en": issue, "q": latched},
            )
            child_pins[port.name] = latched
        child_go = m.register(issue)
    else:
        for port in data_inputs:
            child_pins[port.name] = staged_inputs[port.name]
        child_go = issue

    go_pin = child.go_port
    if go_pin is None and "go" in child.module.ports:
        go_pin = "go"
    if go_pin is not None:
        child_pins[go_pin] = child_go

    child_outs: Dict[str, Net] = {}
    for port in data_outputs:
        child_outs[port.name] = m.fresh_net(
            port.width * (port.size or 1), f"c_{port.name}"
        )
        child_pins[port.name] = child_outs[port.name]
    m.add_submodule(child.module, child_pins, name="core")

    # Completion tracking and output FIFO.
    done = valid_chain(m, child_go, latency)
    total_width = sum(
        p.width * (p.size or 1) for p in data_outputs
    ) or 1
    if data_outputs:
        packed = child_outs[data_outputs[0].name]
        for port in data_outputs[1:]:
            widened = m.fresh_net(
                packed.width + port.width * (port.size or 1), "obus"
            )
            m.add_cell(
                "concat", {"a": child_outs[port.name], "b": packed, "out": widened}
            )
            packed = widened
    else:
        packed = m.constant(0, 1)
    fifo_out = m.fresh_net(total_width, "fifo_out")
    fifo_in_ready = m.fresh_net(1, "fifo_in_ready")
    fifo_out_valid = m.fresh_net(1, "fifo_out_valid")
    m.add_cell(
        "fifo",
        {
            "in_data": packed,
            "in_valid": done,
            "in_ready": fifo_in_ready,
            "out_data": fifo_out,
            "out_valid": fifo_out_valid,
            "out_ready": out_ready,
        },
        {"depth": fifo_depth},
    )
    m.add_cell("slice", {"a": fifo_out_valid, "out": out_valid}, {"lsb": 0})
    pop_net = bit_and(m, fifo_out_valid, out_ready)
    m.add_cell("slice", {"a": pop_net, "out": pop}, {"lsb": 0})
    offset = 0
    for port in data_outputs:
        width = port.width * (port.size or 1)
        m.add_cell(
            "slice",
            {"a": fifo_out, "out": output_nets[port.name]},
            {"lsb": offset},
        )
        offset += width
    return LIWrapped(m, child, fifo_depth)


class LIDriver:
    """Test harness: drives a wrapped module through its handshake."""

    def __init__(self, wrapped: LIWrapped):
        from ..rtl import Simulator

        self.wrapped = wrapped
        self.simulator = Simulator(wrapped.module)

    def run(
        self,
        transactions: List[Dict[str, int]],
        backpressure_every: int = 0,
        max_cycles: int = 10000,
    ) -> List[Dict[str, int]]:
        """Push transactions (retrying when stalled), pop all results.

        ``backpressure_every > 0`` deasserts ``out_ready`` on a cadence to
        exercise the consumer-stall path.
        """
        child = self.wrapped.child
        data_inputs = [p for p in child.inputs if not p.interface]
        data_outputs = [p for p in child.outputs if not p.interface]
        results: List[Dict[str, int]] = []
        pending = list(transactions)
        cycle = 0
        while len(results) < len(transactions):
            if cycle >= max_cycles:
                raise RuntimeError("LI driver timed out")
            inputs = {"in_valid": 0, "out_ready": 1}
            if backpressure_every and cycle % backpressure_every == 0:
                inputs["out_ready"] = 0
            if pending:
                inputs["in_valid"] = 1
                for port in data_inputs:
                    inputs[port.name] = pending[0][port.name]
            self.simulator.poke(inputs)
            self.simulator.evaluate()
            fired_in = (
                pending
                and self.simulator.peek("in_ready") == 1
            )
            fired_out = (
                self.simulator.peek("out_valid") == 1
                and inputs["out_ready"] == 1
            )
            if fired_out:
                results.append(
                    {p.name: self.simulator.peek(p.name) for p in data_outputs}
                )
            self.simulator.tick()
            if fired_in:
                pending.pop(0)
            cycle += 1
        self.cycles = cycle
        return results

"""Small control-logic builders used by the latency-insensitive substrate.

Everything here is built from plain netlist cells so the synthesis model
charges honestly for the handshaking logic — the paper's central claim is
that this logic is pure overhead when timing is statically known.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Optional, Tuple

from ..rtl import Module, Net


def bit_not(m: Module, a: Net) -> Net:
    return m.unop("not", a, width=1)


def bit_and(m: Module, a: Net, b: Net) -> Net:
    return m.binop("and", a, b, width=1)


def bit_or(m: Module, a: Net, b: Net) -> Net:
    return m.binop("or", a, b, width=1)


def counter_width(limit: int) -> int:
    return max(1, ceil(log2(limit + 1)))


def credit_counter(
    m: Module, depth: int, take: Net, give: Net
) -> Tuple[Net, Net]:
    """An up/down credit counter starting at ``depth``.

    Returns ``(credits, has_credit)``: ``take`` spends one credit,
    ``give`` returns one (both may fire in the same cycle).
    """
    width = counter_width(depth)
    state = m.fresh_net(width, "credits")
    one = m.constant(1, width)
    minus = m.binop("sub", state, one, width)
    plus = m.binop("add", state, one, width)
    after_take = m.mux(take, minus, state)
    both = bit_and(m, take, give)
    neither_changed = m.mux(give, plus, after_take)
    next_state = m.mux(both, state, neither_changed)
    m.add_cell("reg", {"d": next_state, "q": state}, {"init": depth})
    zero = m.constant(0, width)
    is_zero = m.binop("eq", state, zero, 1)
    has_credit = bit_not(m, is_zero)
    return state, has_credit


def spacing_guard(m: Module, interval: int, issue: Net) -> Net:
    """Ready signal enforcing an initiation interval.

    After ``issue`` fires, ready deasserts for ``interval - 1`` cycles.
    For interval 1 the guard is constant true.
    """
    if interval <= 1:
        return m.constant(1, 1)
    width = counter_width(interval)
    state = m.fresh_net(width, "iicnt")
    zero = m.constant(0, width)
    one = m.constant(1, width)
    is_zero = m.binop("eq", state, zero, 1)
    reload = m.constant(interval - 1, width)
    decremented = m.binop("sub", state, one, width)
    hold = m.mux(is_zero, state, decremented)
    next_state = m.mux(issue, reload, hold)
    m.add_cell("reg", {"d": next_state, "q": state}, {"init": 0})
    return is_zero


def valid_chain(m: Module, start: Net, length: int) -> Net:
    """A 1-bit shift register marking in-flight transactions."""
    return m.delay_chain(start, length)


def up_counter(
    m: Module, limit: int, enable: Net, reset: Net
) -> Tuple[Net, Net]:
    """A saturating index counter: returns (value, at_limit).

    Increments while ``enable``; ``reset`` (dominant) returns to zero.
    ``at_limit`` is asserted when value == limit.
    """
    width = counter_width(limit)
    state = m.fresh_net(width, "idx")
    one = m.constant(1, width)
    bumped = m.binop("add", state, one, width)
    advanced = m.mux(enable, bumped, state)
    zero = m.constant(0, width)
    next_state = m.mux(reset, zero, advanced)
    m.add_cell("reg", {"d": next_state, "q": state}, {"init": 0})
    limit_net = m.constant(limit, width)
    at_limit = m.binop("eq", state, limit_net, 1)
    return state, at_limit

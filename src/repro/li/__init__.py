"""Latency-insensitive substrate: handshakes, credits, LS->LI wrapping."""

from .control import (
    bit_and,
    bit_not,
    bit_or,
    counter_width,
    credit_counter,
    spacing_guard,
    up_counter,
    valid_chain,
)
from .wrapper import LIDriver, LIWrapped, wrap_latency_sensitive

__all__ = [
    "bit_and",
    "bit_not",
    "bit_or",
    "counter_width",
    "credit_counter",
    "spacing_guard",
    "up_counter",
    "valid_chain",
    "LIDriver",
    "LIWrapped",
    "wrap_latency_sensitive",
]

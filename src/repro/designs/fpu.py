"""The FPU case study (sections 2 and 3, Table 1).

Three implementations of a two-function arithmetic unit built around
FloPoCo-generated adder and multiplier cores:

* **LS / LA** — the corrected latency-abstract Lilac design of Figure 5b.
  After elaboration it *is* the latency-sensitive implementation of
  Figure 2: pipeline-balancing shift registers, no handshakes.  The same
  source adapts to any FloPoCo frequency goal.
* **LI** — the ready--valid baseline of Figure 1b: each core wrapped in a
  latency-insensitive interface, an op FIFO for bookkeeping, and
  handshake plumbing to merge the two result streams.

``op = 1`` selects addition, ``op = 0`` multiplication (matching the mux
polarity in Figure 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..driver import CompileSession, default_session
from ..generators.flopoco import FloPoCoGenerator
from ..lilac.elaborate import ElabResult
from ..li import LIDriver, bit_and, wrap_latency_sensitive
from ..li.wrapper import LIWrapped
from ..rtl import Module, Simulator

FPU_LA_SOURCE = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

gen "flopoco" comp FPMul[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

comp FPU[#W]<G:1>(
    op: [G, G+1] 1, l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L >= 1; } {
  Add := new FPAdd[#W];
  Mul := new FPMul[#W];
  add := Add<G>(l, r);
  mul := Mul<G>(l, r);
  let #Max = Max[Add::#L, Mul::#L]::#Out;
  sa := new Shift[#W, #Max - Add::#L]<G+Add::#L>(add.o);
  sm := new Shift[#W, #Max - Mul::#L]<G+Mul::#L>(mul.o);
  so := new Shift[1, #Max]<G>(op);
  mx := new Mux[#W]<G+#Max>(so.out, sa.out, sm.out);
  o = mx.out;
  #L := #Max;
}
"""


def fpu_generators(frequency_mhz: int) -> List:
    return [FloPoCoGenerator(frequency_mhz)]


def elaborate_fpu_ls(
    frequency_mhz: int, width: int = 32, session: Optional[CompileSession] = None
) -> ElabResult:
    """Elaborate the LA design into its latency-sensitive implementation."""
    session = session or default_session()
    return session.elaborate(
        FPU_LA_SOURCE, "FPU", {"#W": width}, fpu_generators(frequency_mhz)
    ).value


class LiFpu:
    """Latency-insensitive FPU (Figure 1b).

    The adder and multiplier are wrapped individually; an op FIFO records
    which unit's result each transaction needs; output-side handshake
    logic pops the right stream.  Both unit wrappers receive every
    operand pair (as in Figure 1b, where the FSM steers data); the op bit
    selects which result is forwarded.
    """

    def __init__(
        self,
        frequency_mhz: int,
        width: int = 32,
        fifo_depth: int = None,
        session: Optional[CompileSession] = None,
    ):
        self.width = width
        session = session or default_session()
        generators = fpu_generators(frequency_mhz)
        self.add_core = session.elaborate(
            FPU_LA_SOURCE, "FPAdd", {"#W": width}, generators
        ).value
        self.mul_core = session.elaborate(
            FPU_LA_SOURCE, "FPMul", {"#W": width}, generators
        ).value
        self.add_wrapped = wrap_latency_sensitive(
            self.add_core, fifo_depth, name="fpadd_li"
        )
        self.mul_wrapped = wrap_latency_sensitive(
            self.mul_core, fifo_depth, name="fpmul_li"
        )
        op_depth = fifo_depth or max(
            2, max(self.add_core.latency, self.mul_core.latency) + 1
        )
        self.module = self._build(op_depth)

    def _build(self, fifo_depth: int) -> Module:
        width = self.width
        m = Module(f"FPU_LI_W{width}")
        in_valid = m.add_input("in_valid", 1)
        op = m.add_input("op", 1)
        l_in = m.add_input("l", width)
        r_in = m.add_input("r", width)
        out_ready = m.add_input("out_ready", 1)
        in_ready = m.add_output("in_ready", 1)
        out_valid = m.add_output("out_valid", 1)
        o_out = m.add_output("o", width)

        add_in_ready = m.fresh_net(1, "add_in_ready")
        mul_in_ready = m.fresh_net(1, "mul_in_ready")
        op_in_ready = m.fresh_net(1, "op_in_ready")
        # Accept when every unit and the op FIFO can take the transaction.
        both = bit_and(m, add_in_ready, mul_in_ready)
        ready = bit_and(m, both, op_in_ready)
        m.add_cell("slice", {"a": ready, "out": in_ready}, {"lsb": 0})
        issue = bit_and(m, in_valid, ready)

        add_out_valid = m.fresh_net(1, "add_ov")
        mul_out_valid = m.fresh_net(1, "mul_ov")
        add_out = m.fresh_net(width, "add_o")
        mul_out = m.fresh_net(width, "mul_o")
        pop = m.fresh_net(1, "pop")
        m.add_submodule(
            self.add_wrapped.module,
            {
                "in_valid": issue,
                "in_ready": add_in_ready,
                "l": l_in,
                "r": r_in,
                "out_ready": pop,
                "out_valid": add_out_valid,
                "o": add_out,
            },
            name="u_add",
        )
        m.add_submodule(
            self.mul_wrapped.module,
            {
                "in_valid": issue,
                "in_ready": mul_in_ready,
                "l": l_in,
                "r": r_in,
                "out_ready": pop,
                "out_valid": mul_out_valid,
                "o": mul_out,
            },
            name="u_mul",
        )
        # Bookkeeping FIFO for the op bit (Figure 1b).
        op_out_valid = m.fresh_net(1, "op_ov")
        op_out = m.fresh_net(1, "op_o")
        m.add_cell(
            "fifo",
            {
                "in_data": op,
                "in_valid": issue,
                "in_ready": op_in_ready,
                "out_data": op_out,
                "out_valid": op_out_valid,
                "out_ready": pop,
            },
            {"depth": fifo_depth},
        )
        # A result transfers when all three streams agree.
        results_ready = bit_and(m, add_out_valid, mul_out_valid)
        all_valid = bit_and(m, results_ready, op_out_valid)
        m.add_cell("slice", {"a": all_valid, "out": out_valid}, {"lsb": 0})
        pop_now = bit_and(m, all_valid, out_ready)
        m.add_cell("slice", {"a": pop_now, "out": pop}, {"lsb": 0})
        result = m.mux(op_out, add_out, mul_out)
        m.add_cell("slice", {"a": result, "out": o_out}, {"lsb": 0})
        return m

    def run(self, transactions: List[Dict[str, int]], max_cycles: int = 10000):
        """Drive the LI FPU through its handshake; returns result values."""
        sim = Simulator(self.module)
        pending = list(transactions)
        results: List[int] = []
        cycle = 0
        while len(results) < len(transactions):
            if cycle >= max_cycles:
                raise RuntimeError("LI FPU timed out")
            inputs = {"in_valid": 0, "out_ready": 1, "op": 0, "l": 0, "r": 0}
            if pending:
                inputs.update(pending[0])
                inputs["in_valid"] = 1
            sim.poke(inputs)
            sim.evaluate()
            took = pending and sim.peek("in_ready") == 1
            gave = sim.peek("out_valid") == 1
            if gave:
                results.append(sim.peek("o"))
            sim.tick()
            if took:
                pending.pop(0)
            cycle += 1
        return results

"""Gaussian Blur Pyramid — latency-abstract implementation (section 7).

The design mirrors the paper's structure:

* an Aetherling-generated 4x4 convolution whose chunk size ``#N``,
  latency, initiation interval and input-hold requirement are *output
  parameters* chosen by the tool;
* a serializer (Figure 11) streaming a 16-pixel tile to the convolution
  in ``16/#N`` chunks;
* a ``Blur`` component that realigns the chunked results with per-element
  shift registers (pipeline balancing the type system verifies for every
  choice of ``#N``);
* the pyramid: blur, downsample, blur, upsample, blend with the delayed
  level-0 image, and a final anti-aliasing blur — with all inter-stage
  delays expressed through output parameters.

Tile semantics (see DESIGN.md): one transaction carries a 16-pixel tile;
each chunk's convolution result is the Gaussian dot product of the
sliding window (our Aetherling stand-in's contract).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..driver import CompileSession, default_session
from ..generators import GeneratorRegistry
from ..generators.aetherling import AetherlingGenerator, golden_conv
from ..generators.serializer import SerializerGenerator
from ..lilac.elaborate import ElabResult

TILE = 16

SERIALIZER_INTERFACE = """
gen "serializer" comp Ser[#W, #NC, #B, #C, #H]<G:#C*#NC>(
    en_i: interface[G], in[#NC*#B]: [G, G+1] #W
) -> (o[#B]: [G+1, G+#C*(#NC-1)+#H+1] #W)
  where #NC >= 1, #B >= 1, #C >= #H, #H >= 1;
"""

AETHERLING_CONV_INTERFACE = """
gen "aetherling" comp AethConv[#W]<G:#II>(
    val_i: interface[G],
    in[#N]: [G, G+#H] #W
) -> (out[#N]: [G+#L, G+#L+1] #W) with {
    some #H where #H > 0;
    some #N where #N > 0, #N <= 16, 16 % #N == 0;
    some #L where #L > 0;
    some #II where #II >= #H;
};
"""

ARRAY_HELPERS = """
// Delay every element of an array signal by #S cycles.
comp AShift[#W, #Z, #S]<G:1>(in[#Z]: [G, G+1] #W)
    -> (out[#Z]: [G+#S, G+#S+1] #W) where #S >= 0, #Z >= 1 {
  for #e in 0..#Z {
    sh := new Shift[#W, #S]<G>(in{#e});
    out{#e} = sh.out;
  }
}

// Nearest-neighbour 4x downsample with hold (tile stays 16 wide so the
// pyramid stages compose; see DESIGN.md).
comp Down[#W]<G:1>(in[16]: [G, G+1] #W) -> (out[16]: [G, G+1] #W) {
  for #e in 0..16 {
    out{#e} = in{(#e/4)*4};
  }
}

// Nearest-neighbour 2x upsample.
comp Up[#W]<G:1>(in[16]: [G, G+1] #W) -> (out[16]: [G, G+1] #W) {
  for #e in 0..16 {
    out{#e} = in{(#e/2)*2};
  }
}

// Weighted average of two tiles: out = (a + b) / 2.
comp Blend[#W]<G:1>(a[16]: [G, G+1] #W, b[16]: [G, G+1] #W)
    -> (out[16]: [G, G+1] #W) {
  for #e in 0..16 {
    s := new Add[#W]<G>(a{#e}, b{#e});
    h := new ShiftRight[#W, 1]<G>(s.out);
    out{#e} = h.out;
  }
}
"""

BLUR = """
// One blur level: serialize the tile into conv-sized chunks, run the
// Aetherling convolution on each chunk, and realign the chunk results.
// Realignment uses one *hold register* per early element (the Figure 11
// idiom) rather than shift chains — the serialization cost that shrinks
// as the tool provides more parallelism.
comp Blur[#W]<G:#D>(px[16]: [G, G+1] #W)
    -> (out[16]: [G+#L, G+#L+1] #W)
    with { some #D where #D >= 1; some #L where #L >= 1; } {
  C := new AethConv[#W];
  let #N = C::#N;
  let #NC = 16 / #N;
  let #CI = C::#II;
  let #H = C::#H;
  S := new Ser[#W, #NC, #N, #CI, #H];
  s := S<G>(px);
  for #k in 0..#NC {
    c := C<G+1+#CI*#k>(s.o);
    for #j in 0..#N {
      if #k < #NC - 1 {
        h := new RegHold[#W, #CI*(#NC-1-#k)]<G+1+#CI*#k+C::#L>(c.out{#j});
        out{#N*#k+#j} = h.out;
      } else {
        out{#N*#k+#j} = c.out{#j};
      }
    }
  }
  #D := #CI * #NC;
  #L := 1 + #CI*(#NC-1) + C::#L;
}
"""

GBP = """
// The pyramid: blur level 0, downsample, blur level 1, upsample, blend
// with the (delayed) level-0 output, and a final anti-aliasing blur.
comp GBP[#W]<G:#II>(img[16]: [G, G+1] #W)
    -> (out[16]: [G+#L, G+#L+1] #W)
    with { some #II where #II >= 1; some #L where #L >= 1; } {
  Blur0 := new Blur[#W];
  Blur1 := new Blur[#W];
  BlurUp := new Blur[#W];

  b0 := Blur0<G>(img);
  dn := new Down[#W]<G+Blur0::#L>(b0.out);
  b1 := Blur1<G+Blur0::#L>(dn.out);
  up := new Up[#W]<G+Blur0::#L+Blur1::#L>(b1.out);
  // Hold the level-0 tile until level 1 finishes.  When the pyramid is
  // slow enough (at most two tiles in flight across Blur1's latency) a
  // double-buffered DelayBuf suffices; at high throughput we fall back
  // to shift-register balancing.  The choice adapts automatically to
  // whatever timing Aetherling reports — the LA payoff.
  bundle<#e> held[16]: [G+Blur0::#L+Blur1::#L, G+Blur0::#L+Blur1::#L+1] #W;
  if 2 * Blur0::#D >= Blur1::#L + 2 {
    hb := new DelayBuf[#W, 16, Blur1::#L]<G+Blur0::#L>(b0.out);
    for #e in 0..16 { held{#e} = hb.out{#e}; }
  } else {
    ha := new AShift[#W, 16, Blur1::#L]<G+Blur0::#L>(b0.out);
    for #e in 0..16 { held{#e} = ha.out{#e}; }
  }
  blend := new Blend[#W]<G+Blur0::#L+Blur1::#L>(held, up.out);
  b2 := BlurUp<G+Blur0::#L+Blur1::#L>(blend.out);
  for #e in 0..16 {
    out{#e} = b2.out{#e};
  }
  // II is dictated by the slowest blur; L accumulates down the pipeline.
  #II := Max3[Blur0::#D, Blur1::#D, BlurUp::#D]::#Out;
  #L := Blur0::#L + Blur1::#L + BlurUp::#L;
}
"""

GBP_SOURCE = (
    SERIALIZER_INTERFACE + AETHERLING_CONV_INTERFACE + ARRAY_HELPERS + BLUR + GBP
)


def gbp_registry(parallelism: int) -> GeneratorRegistry:
    registry = GeneratorRegistry()
    registry.register(AetherlingGenerator(parallelism))
    registry.register(SerializerGenerator())
    return registry


def elaborate_gbp(
    parallelism: int, width: int = 16, session: Optional[CompileSession] = None
) -> ElabResult:
    """Elaborate the LA pyramid for one Aetherling parallelism setting."""
    session = session or default_session()
    return session.elaborate(
        GBP_SOURCE, "GBP", {"#W": width}, gbp_registry(parallelism)
    ).value


def elaborate_blur(
    parallelism: int, width: int = 16, session: Optional[CompileSession] = None
) -> ElabResult:
    session = session or default_session()
    return session.elaborate(
        GBP_SOURCE, "Blur", {"#W": width}, gbp_registry(parallelism)
    ).value


# ---------------------------------------------------------------------------
# Golden (software) model used by tests and examples.


def golden_blur_chunked(
    tile: List[int],
    parallelism: int,
    width: int,
    window: Optional[List[int]] = None,
) -> List[int]:
    """Chunk-aware software model matching the stand-in's semantics.

    The convolution window persists across transactions in hardware; pass
    ``window`` (mutated in place) to model back-to-back tiles.
    """
    chunk = parallelism
    chunks = TILE // chunk
    state = window if window is not None else [0] * TILE
    out = [0] * TILE
    for index in range(chunks):
        part = tile[index * chunk : (index + 1) * chunk]
        state[:] = part + state[: TILE - chunk]
        value = golden_conv(state, width)
        for lane in range(chunk):
            out[index * chunk + lane] = value
    return out


def golden_down(tile: List[int]) -> List[int]:
    return [tile[(i // 4) * 4] for i in range(TILE)]


def golden_up(tile: List[int]) -> List[int]:
    return [tile[(i // 2) * 2] for i in range(TILE)]


def golden_blend(a: List[int], b: List[int], width: int) -> List[int]:
    mask = (1 << width) - 1
    return [((x + y) & mask) >> 1 for x, y in zip(a, b)]


def golden_gbp(tile: List[int], parallelism: int, width: int) -> List[int]:
    b0 = golden_blur_chunked(tile, parallelism, width)
    b1 = golden_blur_chunked(golden_down(b0), parallelism, width)
    blended = golden_blend(b0, golden_up(b1), width)
    return golden_blur_chunked(blended, parallelism, width)

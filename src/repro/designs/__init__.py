"""The paper's evaluated designs (FPU, GBP, FFT, RISC, BLAS), plus
synthetic stress netlists for the simulation backends."""

from .synthetic import fifo_pipeline

__all__ = ["fifo_pipeline"]

"""The paper's evaluated designs (FPU, GBP, FFT, RISC, BLAS)."""

"""A three-stage RISC datapath (Figure 8 row "RISC 3-stage Base").

A classic fetch/decode/execute pipeline over a 16-bit instruction word:

* **stage 0 (decode)** — field extraction: opcode, two source operands
  selected between an immediate and the forwarded accumulator;
* **stage 1 (operand)** — operand registers, zero/sign handling;
* **stage 2 (execute)** — the ALU (add, sub, and, or, xor, shift) with a
  result register.

The design is deliberately a straight-line pipelined datapath (no
control hazards): the paper's row measures the type checker on a
realistic mix of slices, muxes, and per-stage registers, which is what
this reproduces.  Instruction format::

    [15:12] opcode   [11:8] rd (unused here)   [7:0] immediate
"""

from __future__ import annotations

from typing import List, Optional

from ..driver import CompileSession, default_session
from ..lilac.elaborate import ElabResult

RISC_SOURCE = """
// Decode stage: slice the instruction word into fields.
comp Decode<G:1>(instr: [G, G+1] 16)
    -> (op: [G+1, G+2] 4, imm: [G+1, G+2] 8) {
  opf := new Slice[16, 4, 12]<G>(instr);
  immf := new Slice[16, 8, 0]<G>(instr);
  rop := new Reg[4]<G>(opf.out);
  rimm := new Reg[8]<G>(immf.out);
  op = rop.out;
  imm = rimm.out;
}

// Operand stage: choose between immediate and forwarded accumulator.
comp Operand<G:1>(op: [G, G+1] 4, imm: [G, G+1] 8, acc: [G, G+1] 8)
    -> (a: [G+1, G+2] 8, b: [G+1, G+2] 8, opq: [G+1, G+2] 4) {
  // Ops 0-3 use imm as the second operand, ops 4-7 use the accumulator.
  four := new ConstVal[4, 4]<G>();
  useacc := new Lt[4]<G>(op, four.out);
  sel := new NotGate[1]<G>(useacc.out);
  bsel := new Mux[8]<G>(sel.out, acc, imm);
  ra := new Reg[8]<G>(acc);
  rb := new Reg[8]<G>(bsel.out);
  rop := new Reg[4]<G>(op);
  a = ra.out;
  b = rb.out;
  opq = rop.out;
}

// Execute stage: the ALU proper.
comp Alu<G:1>(op: [G, G+1] 4, a: [G, G+1] 8, b: [G, G+1] 8)
    -> (res: [G+1, G+2] 8) {
  sum := new Add[8]<G>(a, b);
  dif := new Sub[8]<G>(a, b);
  con := new AndGate[8]<G>(a, b);
  dis := new OrGate[8]<G>(a, b);
  flp := new XorGate[8]<G>(a, b);
  shl := new ShiftLeft[8, 1]<G>(b);
  shr := new ShiftRight[8, 1]<G>(b);
  pas := new OrGate[8]<G>(b, b);

  // Two-level operation select on op[2:0].
  b0 := new Slice[4, 1, 0]<G>(op);
  b1 := new Slice[4, 1, 1]<G>(op);
  b2 := new Slice[4, 1, 2]<G>(op);
  m00 := new Mux[8]<G>(b0.out, dif.out, sum.out);
  m01 := new Mux[8]<G>(b0.out, dis.out, con.out);
  m10 := new Mux[8]<G>(b0.out, shl.out, flp.out);
  m11 := new Mux[8]<G>(b0.out, pas.out, shr.out);
  m0 := new Mux[8]<G>(b1.out, m01.out, m00.out);
  m1 := new Mux[8]<G>(b1.out, m11.out, m10.out);
  m := new Mux[8]<G>(b2.out, m1.out, m0.out);
  r := new Reg[8]<G>(m.out);
  res = r.out;
}

// The three-stage pipeline: one instruction per cycle, forwarding the
// accumulator into the operand stage.
comp Risc3<G:1>(instr: [G, G+1] 16, acc: [G+1, G+2] 8)
    -> (result: [G+3, G+4] 8) {
  D := new Decode;
  O := new Operand;
  X := new Alu;
  d := D<G>(instr);
  o := O<G+1>(d.op, d.imm, acc);
  x := X<G+2>(o.opq, o.a, o.b);
  result = x.res;
}
"""


def elaborate_risc(session: Optional[CompileSession] = None) -> ElabResult:
    session = session or default_session()
    return session.elaborate(RISC_SOURCE, "Risc3", {}).value


OP_ADD, OP_SUB, OP_AND, OP_OR = 0, 1, 2, 3
OP_XOR, OP_SHL, OP_SHR, OP_PASS = 4, 5, 6, 7


def encode_instr(op: int, imm: int) -> int:
    return ((op & 0xF) << 12) | (imm & 0xFF)


def golden_alu(op: int, acc: int, imm: int) -> int:
    """Software model of one instruction's result."""
    b = imm if op < 4 else acc
    a = acc
    result = {
        0: a + b,
        1: a - b,
        2: a & b,
        3: a | b,
        4: a ^ b,
        5: b << 1,
        6: b >> 1,
        7: b,
    }[op & 7]
    return result & 0xFF

"""BLAS level-1 kernels (Figure 8 row "BLAS Level 1 Kernels").

Pipelined 8-lane vector kernels built on the latency-abstract Vivado
multiplier interface (the user picks ``#ML``, the multiplier latency, and
every kernel rebalances itself):

* ``Scal``  — y = alpha * x
* ``Axpy``  — y = alpha * x + y
* ``Dot``   — reduction of x .* y to a scalar
* ``Asum``  — reduction of x to a scalar sum
* ``Nrm2Sq``— sum of squares (norm^2, avoiding the square root)
* ``Iamax`` — index of the maximum element (comparison tree)

Each kernel is parameterized over the element width ``#W`` and exposes
its latency as an output parameter so callers can compose them.
"""

from __future__ import annotations

from typing import List, Optional

from ..driver import CompileSession, default_session
from ..generators import GeneratorRegistry
from ..generators.vivado_mult import VivadoMultGenerator
from ..lilac.elaborate import ElabResult

LANES = 8

BLAS_SOURCE = """
gen "vivado-mult" comp Mult[#W, #L]<G:1>(
    a: [G, G+1] #W, b: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) where #L >= 1;

// y = alpha * x, elementwise over 8 lanes.
comp Scal[#W, #ML]<G:1>(alpha: [G, G+1] #W, x[8]: [G, G+1] #W)
    -> (y[8]: [G+#L, G+#L+1] #W)
    with { some #L where #L >= 1; } where #ML >= 1 {
  for #k in 0..8 {
    m := new Mult[#W, #ML]<G>(alpha, x{#k});
    y{#k} = m.o;
  }
  #L := #ML;
}

// y = alpha * x + y.
comp Axpy[#W, #ML]<G:1>(alpha: [G, G+1] #W,
                        x[8]: [G, G+1] #W, y[8]: [G, G+1] #W)
    -> (r[8]: [G+#L, G+#L+1] #W)
    with { some #L where #L >= 2; } where #ML >= 1 {
  for #k in 0..8 {
    m := new Mult[#W, #ML]<G>(alpha, x{#k});
    yd := new Shift[#W, #ML]<G>(y{#k});
    s := new Add[#W]<G+#ML>(m.o, yd.out);
    rr := new Reg[#W]<G+#ML>(s.out);
    r{#k} = rr.out;
  }
  #L := #ML + 1;
}

// Pairwise reduction of 8 lanes in 3 registered levels.
comp Reduce8[#W]<G:1>(v[8]: [G, G+1] #W) -> (s: [G+3, G+4] #W) {
  bundle<#i> l1[4]: [G+1, G+2] #W;
  bundle<#i> l2[2]: [G+2, G+3] #W;
  for #k in 0..4 {
    a := new Add[#W]<G>(v{2*#k}, v{2*#k+1});
    r := new Reg[#W]<G>(a.out);
    l1{#k} = r.out;
  }
  for #k in 0..2 {
    a := new Add[#W]<G+1>(l1{2*#k}, l1{2*#k+1});
    r := new Reg[#W]<G+1>(a.out);
    l2{#k} = r.out;
  }
  a := new Add[#W]<G+2>(l2{0}, l2{1});
  r := new Reg[#W]<G+2>(a.out);
  s = r.out;
}

// dot(x, y): multiply lanes then reduce.
comp Dot[#W, #ML]<G:1>(x[8]: [G, G+1] #W, y[8]: [G, G+1] #W)
    -> (s: [G+#L, G+#L+1] #W)
    with { some #L where #L >= 4; } where #ML >= 1 {
  bundle<#i> prod[8]: [G+#ML, G+#ML+1] #W;
  for #k in 0..8 {
    m := new Mult[#W, #ML]<G>(x{#k}, y{#k});
    prod{#k} = m.o;
  }
  R := new Reduce8[#W];
  red := R<G+#ML>(prod);
  s = red.s;
  #L := #ML + 3;
}

// asum(x): plain reduction (unsigned stand-in for sum of magnitudes).
comp Asum[#W]<G:1>(x[8]: [G, G+1] #W) -> (s: [G+3, G+4] #W) {
  R := new Reduce8[#W];
  red := R<G>(x);
  s = red.s;
}

// nrm2^2: sum of squares.
comp Nrm2Sq[#W, #ML]<G:1>(x[8]: [G, G+1] #W)
    -> (s: [G+#L, G+#L+1] #W)
    with { some #L where #L >= 4; } where #ML >= 1 {
  bundle<#i> sq[8]: [G+#ML, G+#ML+1] #W;
  for #k in 0..8 {
    m := new Mult[#W, #ML]<G>(x{#k}, x{#k});
    sq{#k} = m.o;
  }
  R := new Reduce8[#W];
  red := R<G+#ML>(sq);
  s = red.s;
  #L := #ML + 3;
}

// A max+index pair selector.
comp MaxSel[#W]<G:1>(va: [G, G+1] #W, ia: [G, G+1] 4,
                     vb: [G, G+1] #W, ib: [G, G+1] 4)
    -> (v: [G+1, G+2] #W, i: [G+1, G+2] 4) {
  bgt := new Lt[#W]<G>(va, vb);
  vm := new Mux[#W]<G>(bgt.out, vb, va);
  im := new Mux[4]<G>(bgt.out, ib, ia);
  rv := new Reg[#W]<G>(vm.out);
  ri := new Reg[4]<G>(im.out);
  v = rv.out;
  i = ri.out;
}

// iamax: index of the maximum element (ties keep the lower index).
comp Iamax[#W]<G:1>(x[8]: [G, G+1] #W) -> (idx: [G+3, G+4] 4) {
  bundle<#i> v1[4]: [G+1, G+2] #W;
  bundle<#i> i1[4]: [G+1, G+2] 4;
  bundle<#i> v2[2]: [G+2, G+3] #W;
  bundle<#i> i2[2]: [G+2, G+3] 4;
  for #k in 0..4 {
    ca := new ConstVal[4, 2*#k]<G>();
    cb := new ConstVal[4, 2*#k+1]<G>();
    sel := new MaxSel[#W]<G>(x{2*#k}, ca.out, x{2*#k+1}, cb.out);
    v1{#k} = sel.v;
    i1{#k} = sel.i;
  }
  for #k in 0..2 {
    sel := new MaxSel[#W]<G+1>(v1{2*#k}, i1{2*#k}, v1{2*#k+1}, i1{2*#k+1});
    v2{#k} = sel.v;
    i2{#k} = sel.i;
  }
  sel := new MaxSel[#W]<G+2>(v2{0}, i2{0}, v2{1}, i2{1});
  idx = sel.i;
}
"""


def blas_registry() -> GeneratorRegistry:
    return GeneratorRegistry().register(VivadoMultGenerator())


def elaborate_kernel(
    name: str, params, session: Optional[CompileSession] = None
) -> ElabResult:
    session = session or default_session()
    return session.elaborate(BLAS_SOURCE, name, params, blas_registry()).value


def golden_dot(x: List[int], y: List[int], width: int) -> int:
    mask = (1 << width) - 1
    total = 0
    for a, b in zip(x, y):
        total += (a * b) & mask
    return total & mask


def golden_axpy(alpha: int, x: List[int], y: List[int], width: int) -> List[int]:
    mask = (1 << width) - 1
    return [((alpha * a) & mask) + b & mask for a, b in zip(x, y)]


def golden_iamax(x: List[int]) -> int:
    best = 0
    for index, value in enumerate(x):
        if value > x[best]:
            best = index
    return best

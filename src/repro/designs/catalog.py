"""One catalog of the paper's evaluated design points.

Each entry resolves to the ``(source, component, generators, params)``
quadruple a :class:`~repro.driver.CompileSession` stage takes.  The CLI
presets (``python -m repro compile --design …``) and the optimization
ablation (``evalx.ablation``) both read this table, so a new design
becomes a CLI preset and an ablation row by being added here once.

Imports are deferred so listing the catalog never pays for parsing the
design sources.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Default FloPoCo frequency goal (MHz) and Aetherling parallelism.
DEFAULT_FREQ = 400
DEFAULT_PARALLELISM = 16


def _fpu(freq: int, parallelism: int):
    from .fpu import FPU_LA_SOURCE, fpu_generators

    return FPU_LA_SOURCE, "FPU", fpu_generators(freq), {"#W": 32}


def _fft(freq: int, parallelism: int):
    from ..generators.flopoco import FloPoCoGenerator
    from .fft import FFT_LILAC

    return FFT_LILAC, "Fft16", [FloPoCoGenerator(freq)], {"#W": 16}


def _flofft(freq: int, parallelism: int):
    from ..generators.flopoco import FloPoCoGenerator
    from .fft import FFT_FLOPOCO

    return FFT_FLOPOCO, "FloFft16", [FloPoCoGenerator(freq)], {"#W": 32}


def _risc(freq: int, parallelism: int):
    from .risc import RISC_SOURCE

    return RISC_SOURCE, "Risc3", None, {}


def _gbp(freq: int, parallelism: int):
    from .gbp_la import GBP_SOURCE, gbp_registry

    return GBP_SOURCE, "GBP", gbp_registry(parallelism), {"#W": 16}


def _blas(freq: int, parallelism: int):
    from .blas import BLAS_SOURCE, blas_registry

    return BLAS_SOURCE, "Dot", blas_registry(), {"#W": 16, "#ML": 2}


#: name → builder(freq, parallelism) for every evaluated design.
DESIGNS = {
    "fpu": _fpu,
    "fft": _fft,
    "flofft": _flofft,
    "risc": _risc,
    "gbp": _gbp,
    "blas": _blas,
}


def design_point(
    name: str,
    freq: int = DEFAULT_FREQ,
    parallelism: int = DEFAULT_PARALLELISM,
) -> Tuple[str, str, object, Dict[str, int]]:
    """Resolve a catalog entry to (source, component, generators, params)."""
    try:
        builder = DESIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; available: {sorted(DESIGNS)}"
        ) from None
    return builder(freq, parallelism)

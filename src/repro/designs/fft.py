"""FFT designs (Figure 8 rows "FFT (Lilac only)" and "FFT (using FloPoCo)").

Two pipelined transform implementations over 16-element vectors:

* ``Fft16`` — pure Lilac: butterflies from the standard library's
  combinational adders, one register level per stage (latency 4,
  fully pipelined).
* ``FloFft16`` — butterflies built on FloPoCo-generated adders whose
  latency ``#L`` is an *output parameter*: each stage takes ``Add::#L``
  cycles and the design rebalances itself for any frequency goal — the
  latency-abstract payoff on a non-trivial dataflow graph.

As with the generator stand-ins, twiddle factors are unity (the
transform computed is a Walsh--Hadamard transform; see DESIGN.md): the
pipeline structure, the scheduling problem, and the line counts are the
object of study, not the spectral semantics.
"""

from __future__ import annotations

from typing import List, Optional

from ..driver import CompileSession, default_session
from ..generators.flopoco import FloPoCoGenerator
from ..lilac.elaborate import ElabResult

# A registered butterfly: sum and difference, one cycle.
FFT_COMMON = """
comp Bfly[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (s: [G+1, G+2] #W, d: [G+1, G+2] #W) {
  ad := new Add[#W]<G>(a, b);
  sb := new Sub[#W]<G>(a, b);
  rs := new Reg[#W]<G>(ad.out);
  rd := new Reg[#W]<G>(sb.out);
  s = rs.out;
  d = rd.out;
}
"""

FFT_LILAC = FFT_COMMON + """
comp Fft2[#W]<G:1>(x[2]: [G, G+1] #W) -> (y[2]: [G+1, G+2] #W) {
  b := new Bfly[#W]<G>(x{0}, x{1});
  y{0} = b.s;
  y{1} = b.d;
}

comp Fft4[#W]<G:1>(x[4]: [G, G+1] #W) -> (y[4]: [G+2, G+3] #W) {
  // Stage 1: span-2 butterflies.
  b0 := new Bfly[#W]<G>(x{0}, x{2});
  b1 := new Bfly[#W]<G>(x{1}, x{3});
  // Stage 2: span-1 butterflies on the stage-1 results.
  c0 := new Bfly[#W]<G+1>(b0.s, b1.s);
  c1 := new Bfly[#W]<G+1>(b0.d, b1.d);
  y{0} = c0.s;
  y{1} = c0.d;
  y{2} = c1.s;
  y{3} = c1.d;
}

comp Fft8[#W]<G:1>(x[8]: [G, G+1] #W) -> (y[8]: [G+3, G+4] #W) {
  bundle<#i> lo[4]: [G+1, G+2] #W;
  bundle<#i> hi[4]: [G+1, G+2] #W;
  for #k in 0..4 {
    b := new Bfly[#W]<G>(x{#k}, x{#k+4});
    lo{#k} = b.s;
    hi{#k} = b.d;
  }
  L := new Fft4[#W];
  H := new Fft4[#W];
  fl := L<G+1>(lo);
  fh := H<G+1>(hi);
  for #k in 0..4 {
    y{#k} = fl.y{#k};
    y{#k+4} = fh.y{#k};
  }
}

comp Fft16[#W]<G:1>(x[16]: [G, G+1] #W) -> (y[16]: [G+4, G+5] #W) {
  bundle<#i> lo[8]: [G+1, G+2] #W;
  bundle<#i> hi[8]: [G+1, G+2] #W;
  for #k in 0..8 {
    b := new Bfly[#W]<G>(x{#k}, x{#k+8});
    lo{#k} = b.s;
    hi{#k} = b.d;
  }
  L := new Fft8[#W];
  H := new Fft8[#W];
  fl := L<G+1>(lo);
  fh := H<G+1>(hi);
  for #k in 0..8 {
    y{#k} = fl.y{#k};
    y{#k+8} = fh.y{#k};
  }
}
"""

FFT_FLOPOCO = """
gen "flopoco" comp FPAdd[#W]<G:1>(
    l: [G, G+1] #W, r: [G, G+1] #W
) -> (o: [G+#L, G+#L+1] #W) with { some #L where #L > 0; };

// Butterfly on FloPoCo cores: latency is the adder's choice.  The
// subtraction reuses the adder core on negated input (two's complement
// via xor + increment handled inside a second adder), keeping both
// outputs aligned at Add::#L.
comp FBfly[#W]<G:1>(a: [G, G+1] #W, b: [G, G+1] #W)
    -> (s: [G+#L, G+#L+1] #W, d: [G+#L, G+#L+1] #W)
    with { some #L where #L >= 1; } {
  As := new FPAdd[#W];
  Ad := new FPAdd[#W];
  nb := new NotGate[#W]<G>(b);
  one := new ConstVal[#W, 1]<G>();
  nb1 := new Add[#W]<G>(nb.out, one.out);
  sum := As<G>(a, b);
  dif := Ad<G>(a, nb1.out);
  s = sum.o;
  d = dif.o;
  #L := As::#L;
}

comp FloFft4[#W]<G:1>(x[4]: [G, G+1] #W)
    -> (y[4]: [G+#L, G+#L+1] #W) with { some #L where #L >= 2; } {
  B0 := new FBfly[#W];
  B1 := new FBfly[#W];
  b0 := B0<G>(x{0}, x{2});
  b1 := B1<G>(x{1}, x{3});
  let #S = B0::#L;
  C0 := new FBfly[#W];
  C1 := new FBfly[#W];
  c0 := C0<G+#S>(b0.s, b1.s);
  c1 := C1<G+#S>(b0.d, b1.d);
  y{0} = c0.s;
  y{1} = c0.d;
  y{2} = c1.s;
  y{3} = c1.d;
  #L := #S + C0::#L;
}

comp FloFft16[#W]<G:1>(x[16]: [G, G+1] #W)
    -> (y[16]: [G+#L, G+#L+1] #W) with { some #L where #L >= 4; } {
  bundle<#i> s1lo[8]: [G+#S1, G+#S1+1] #W;
  bundle<#i> s1hi[8]: [G+#S1, G+#S1+1] #W;
  B := new FBfly[#W];
  let #S1 = B::#L;
  b0 := B<G>(x{0}, x{8});
  s1lo{0} = b0.s; s1hi{0} = b0.d;
  for #k in 1..8 {
    bk := new FBfly[#W]<G>(x{#k}, x{#k+8});
    s1lo{#k} = bk.s;
    s1hi{#k} = bk.d;
  }
  bundle<#i> s2a[4]: [G+#S2, G+#S2+1] #W;
  bundle<#i> s2b[4]: [G+#S2, G+#S2+1] #W;
  bundle<#i> s2c[4]: [G+#S2, G+#S2+1] #W;
  bundle<#i> s2d[4]: [G+#S2, G+#S2+1] #W;
  B2 := new FBfly[#W];
  let #S2 = #S1 + B2::#L;
  b2 := B2<G+#S1>(s1lo{0}, s1lo{4});
  s2a{0} = b2.s; s2b{0} = b2.d;
  for #k in 1..4 {
    b2k := new FBfly[#W]<G+#S1>(s1lo{#k}, s1lo{#k+4});
    s2a{#k} = b2k.s;
    s2b{#k} = b2k.d;
  }
  for #k in 0..4 {
    b2h := new FBfly[#W]<G+#S1>(s1hi{#k}, s1hi{#k+4});
    s2c{#k} = b2h.s;
    s2d{#k} = b2h.d;
  }
  // Two levels of FloPoCo Fft4 finish each quarter.
  Q0 := new FloFft4[#W];
  Q1 := new FloFft4[#W];
  Q2 := new FloFft4[#W];
  Q3 := new FloFft4[#W];
  q0 := Q0<G+#S2>(s2a);
  q1 := Q1<G+#S2>(s2b);
  q2 := Q2<G+#S2>(s2c);
  q3 := Q3<G+#S2>(s2d);
  for #k in 0..4 {
    y{#k} = q0.y{#k};
    y{#k+4} = q1.y{#k};
    y{#k+8} = q2.y{#k};
    y{#k+12} = q3.y{#k};
  }
  #L := #S2 + Q0::#L;
}
"""


def elaborate_fft16(
    width: int = 16, session: Optional[CompileSession] = None
) -> ElabResult:
    session = session or default_session()
    return session.elaborate(
        FFT_LILAC, "Fft16", {"#W": width}, [FloPoCoGenerator()]
    ).value


def elaborate_flofft16(
    frequency_mhz: int = 400,
    width: int = 32,
    session: Optional[CompileSession] = None,
) -> ElabResult:
    session = session or default_session()
    return session.elaborate(
        FFT_FLOPOCO, "FloFft16", {"#W": width}, [FloPoCoGenerator(frequency_mhz)]
    ).value


def golden_wht(values: List[int], width: int) -> List[int]:
    """Walsh--Hadamard transform with the butterfly ordering used above."""
    mask = (1 << width) - 1
    data = list(values)
    size = len(data)
    span = size // 2
    while span >= 1:
        nxt = [0] * size
        for base in range(0, size, span * 2):
            for offset in range(span):
                i, j = base + offset, base + offset + span
                nxt[i] = (data[i] + data[j]) & mask
                nxt[j] = (data[i] - data[j]) & mask
        data = nxt
        span //= 2
    return data

"""Gaussian Blur Pyramid — latency-insensitive baseline (section 7.1).

The Verilog-with-ready/valid implementation the paper compares against:

* each Aetherling convolution is wrapped in a ready--valid interface;
* each blur level is a *serial* send/recv state machine (Figure 12): the
  send side slices the latched tile into conv-sized chunks and feeds them
  through the handshake, the recv side collects the convolved chunks into
  a result register bank;
* the pyramid chains the blur levels through ready--valid channels, with
  a bookkeeping FIFO buffering the level-0 output until the level-1 branch
  catches up for blending.

The handshake logic, FIFOs and valid chains are real cells, so the
synthesis model charges for exactly the overheads Table 1/Figure 13
measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..driver import CompileSession, default_session
from ..generators.aetherling import AetherlingGenerator
from ..lilac.elaborate import ElabResult
from ..li import bit_and, bit_not, up_counter, wrap_latency_sensitive
from ..rtl import Module, Net, Simulator
from .gbp_la import AETHERLING_CONV_INTERFACE, TILE


def elaborate_conv(
    parallelism: int, width: int, session: Optional[CompileSession] = None
) -> ElabResult:
    session = session or default_session()
    return session.elaborate(
        AETHERLING_CONV_INTERFACE,
        "AethConv",
        {"#W": width},
        [AetherlingGenerator(parallelism)],
    ).value


def build_li_blur(conv: ElabResult, width: int, name: str) -> Module:
    """One blur level: Figure 12's send/recv machines around a wrapped conv."""
    chunk = conv.output("out").size
    chunks = TILE // chunk
    wrapped = wrap_latency_sensitive(conv, name=f"{name}_conv_li")

    m = Module(name)
    in_valid = m.add_input("in_valid", 1)
    tile_in = m.add_input("tile", TILE * width)
    out_ready = m.add_input("out_ready", 1)
    in_ready = m.add_output("in_ready", 1)
    out_valid = m.add_output("out_valid", 1)
    tile_out = m.add_output("tile_o", TILE * width)

    # Serial state: busy from tile acceptance until the result transfers.
    busy = m.fresh_net(1, "busy")
    issue = bit_and(m, in_valid, bit_not(m, busy))
    m.add_cell("slice", {"a": bit_not(m, busy), "out": in_ready}, {"lsb": 0})

    # Latch the input tile.
    tile_reg = m.fresh_net(TILE * width, "tile_reg")
    m.add_cell("regen", {"d": tile_in, "en": issue, "q": tile_reg})

    # Send machine: stream chunk k whenever the conv wrapper is ready.
    cv_in_ready = m.fresh_net(1, "cv_in_ready")
    send_idx, send_done = (None, None)
    cv_fire_holder = m.fresh_net(1, "cv_fire")
    send_idx, send_done = up_counter(m, chunks, cv_fire_holder, issue)
    sending = bit_and(m, busy, bit_not(m, send_done))
    cv_fire = bit_and(m, sending, cv_in_ready)
    m.add_cell("slice", {"a": cv_fire, "out": cv_fire_holder}, {"lsb": 0})
    # Chunk select mux (the LI design pays for this slicing logic too).
    chunk_nets: List[Net] = []
    for index in range(chunks):
        chunk_nets.append(
            m.unop(
                "slice", tile_reg, width=chunk * width, lsb=index * chunk * width
            )
        )
    from ..rtl.netlist import onehot_mux

    select_cases = []
    for index in range(chunks):
        idx_const = m.constant(index, send_idx.width)
        here = m.binop("eq", send_idx, idx_const, 1)
        select_cases.append((here, chunk_nets[index]))
    selected = onehot_mux(m, select_cases, chunk * width)

    # Recv machine: collect convolved chunks into the result bank.
    cv_out_valid = m.fresh_net(1, "cv_out_valid")
    cv_out = m.fresh_net(chunk * width, "cv_out")
    recv_fire = m.fresh_net(1, "recv_fire")
    recv_idx, recv_done = up_counter(m, chunks, recv_fire, issue)
    pop = bit_and(m, cv_out_valid, bit_not(m, recv_done))
    m.add_cell("slice", {"a": pop, "out": recv_fire}, {"lsb": 0})
    m.add_submodule(
        wrapped.module,
        {
            "in_valid": cv_fire,
            "in_ready": cv_in_ready,
            "in": selected,
            "out_ready": pop,
            "out_valid": cv_out_valid,
            "out": cv_out,
        },
        name="u_conv",
    )
    result_chunks: List[Net] = []
    for index in range(chunks):
        idx_const = m.constant(index, recv_idx.width)
        here = m.binop("eq", recv_idx, idx_const, 1)
        enable = bit_and(m, pop, here)
        stored = m.fresh_net(chunk * width, f"res{index}")
        m.add_cell("regen", {"d": cv_out, "en": enable, "q": stored})
        result_chunks.append(stored)
    packed = result_chunks[-1]
    for net in reversed(result_chunks[:-1]):
        widened = m.fresh_net(packed.width + chunk * width, "respack")
        m.add_cell("concat", {"a": packed, "b": net, "out": widened})
        packed = widened
    m.add_cell("slice", {"a": packed, "out": tile_out}, {"lsb": 0})

    # Output handshake and the busy register.
    done = bit_and(m, busy, recv_done)
    m.add_cell("slice", {"a": done, "out": out_valid}, {"lsb": 0})
    out_fire = bit_and(m, done, out_ready)
    after_issue = m.mux(issue, m.constant(1, 1), busy)
    next_busy = m.mux(out_fire, m.constant(0, 1), after_issue)
    m.add_cell("reg", {"d": next_busy, "q": busy}, {"init": 0})
    return m


def _elementwise_blend(m: Module, a: Net, b: Net, width: int) -> Net:
    """(a + b) / 2 per element over packed tiles."""
    lanes = []
    for index in range(TILE):
        ea = m.unop("slice", a, width=width, lsb=index * width)
        eb = m.unop("slice", b, width=width, lsb=index * width)
        total = m.binop("add", ea, eb, width)
        lanes.append(m.unop("shr", total, width=width, amount=1))
    packed = lanes[-1]
    for lane in reversed(lanes[:-1]):
        widened = m.fresh_net(packed.width + width, "blend")
        m.add_cell("concat", {"a": packed, "b": lane, "out": widened})
        packed = widened
    return packed


def _rearrange(m: Module, tile: Net, width: int, index_fn) -> Net:
    """Pure-wiring element shuffle (down/up sampling)."""
    lanes = [
        m.unop("slice", tile, width=width, lsb=index_fn(i) * width)
        for i in range(TILE)
    ]
    packed = lanes[-1]
    for lane in reversed(lanes[:-1]):
        widened = m.fresh_net(packed.width + width, "shuf")
        m.add_cell("concat", {"a": packed, "b": lane, "out": widened})
        packed = widened
    return packed


def build_li_gbp(
    parallelism: int, width: int = 16, session: Optional[CompileSession] = None
) -> Module:
    """The full LI pyramid: three serial blur levels plus a bypass FIFO."""
    conv = elaborate_conv(parallelism, width, session)
    blur0 = build_li_blur(conv, width, f"li_blur0_N{parallelism}")
    blur1 = build_li_blur(conv, width, f"li_blur1_N{parallelism}")
    blur2 = build_li_blur(conv, width, f"li_blur2_N{parallelism}")

    m = Module(f"GBP_LI_N{parallelism}")
    in_valid = m.add_input("in_valid", 1)
    img = m.add_input("img", TILE * width)
    out_ready = m.add_input("out_ready", 1)
    in_ready = m.add_output("in_ready", 1)
    out_valid = m.add_output("out_valid", 1)
    out_tile = m.add_output("out", TILE * width)

    # Level 0.
    b0_in_ready = m.fresh_net(1, "b0_in_ready")
    b0_out_valid = m.fresh_net(1, "b0_ov")
    b0_tile = m.fresh_net(TILE * width, "b0_tile")
    b0_out_ready = m.fresh_net(1, "b0_or")
    m.add_cell("slice", {"a": b0_in_ready, "out": in_ready}, {"lsb": 0})
    m.add_submodule(
        blur0,
        {
            "in_valid": in_valid,
            "in_ready": b0_in_ready,
            "tile": img,
            "out_ready": b0_out_ready,
            "out_valid": b0_out_valid,
            "tile_o": b0_tile,
        },
        name="u_blur0",
    )
    # Fork level-0 output to the level-1 branch and the bypass FIFO.
    fifo_in_ready = m.fresh_net(1, "byp_in_ready")
    b1_in_ready = m.fresh_net(1, "b1_in_ready")
    b1_in_valid = bit_and(m, b0_out_valid, fifo_in_ready)
    fifo_in_valid = bit_and(m, b0_out_valid, b1_in_ready)
    fork_ready = bit_and(m, b1_in_ready, fifo_in_ready)
    m.add_cell("slice", {"a": fork_ready, "out": b0_out_ready}, {"lsb": 0})

    downsampled = _rearrange(m, b0_tile, width, lambda i: (i // 4) * 4)
    b1_out_valid = m.fresh_net(1, "b1_ov")
    b1_tile = m.fresh_net(TILE * width, "b1_tile")
    b1_out_ready = m.fresh_net(1, "b1_or")
    m.add_submodule(
        blur1,
        {
            "in_valid": b1_in_valid,
            "in_ready": b1_in_ready,
            "tile": downsampled,
            "out_ready": b1_out_ready,
            "out_valid": b1_out_valid,
            "tile_o": b1_tile,
        },
        name="u_blur1",
    )
    # Bypass FIFO holding level-0 tiles for blending (the bookkeeping
    # cost called out in section 2.2).
    byp_out_valid = m.fresh_net(1, "byp_ov")
    byp_tile = m.fresh_net(TILE * width, "byp_tile")
    byp_out_ready = m.fresh_net(1, "byp_or")
    m.add_cell(
        "fifo",
        {
            "in_data": b0_tile,
            "in_valid": fifo_in_valid,
            "in_ready": fifo_in_ready,
            "out_data": byp_tile,
            "out_valid": byp_out_valid,
            "out_ready": byp_out_ready,
        },
        {"depth": 2},
    )
    # Join: blend fires into the final blur when both branches have data.
    upsampled = _rearrange(m, b1_tile, width, lambda i: (i // 2) * 2)
    blended = _elementwise_blend(m, byp_tile, upsampled, width)
    b2_in_ready = m.fresh_net(1, "b2_in_ready")
    join_valid = bit_and(m, b1_out_valid, byp_out_valid)
    b2_in_valid = bit_and(m, join_valid, m.constant(1, 1))
    join_fire = bit_and(m, join_valid, b2_in_ready)
    m.add_cell("slice", {"a": join_fire, "out": b1_out_ready}, {"lsb": 0})
    byp_pop = m.binop("or", join_fire, m.constant(0, 1), 1)
    m.add_cell("slice", {"a": byp_pop, "out": byp_out_ready}, {"lsb": 0})
    b2_ov = m.fresh_net(1, "b2_ov")
    b2_tile = m.fresh_net(TILE * width, "b2_tile")
    m.add_submodule(
        blur2,
        {
            "in_valid": b2_in_valid,
            "in_ready": b2_in_ready,
            "tile": blended,
            "out_ready": out_ready,
            "out_valid": b2_ov,
            "tile_o": b2_tile,
        },
        name="u_blur2",
    )
    m.add_cell("slice", {"a": b2_ov, "out": out_valid}, {"lsb": 0})
    m.add_cell("slice", {"a": b2_tile, "out": out_tile}, {"lsb": 0})
    return m


class LiGbpDriver:
    """Transaction harness for the LI pyramid."""

    def __init__(self, module: Module, width: int):
        self.simulator = Simulator(module)
        self.width = width

    def run(self, tiles: List[List[int]], max_cycles: int = 50000):
        from ..lilac.run import pack_elements, unpack_elements

        pending = [pack_elements(tile, self.width) for tile in tiles]
        results: List[List[int]] = []
        cycle = 0
        while len(results) < len(tiles):
            if cycle >= max_cycles:
                raise RuntimeError("LI GBP timed out")
            inputs = {"in_valid": 0, "out_ready": 1, "img": 0}
            if pending:
                inputs["in_valid"] = 1
                inputs["img"] = pending[0]
            self.simulator.poke(inputs)
            self.simulator.evaluate()
            took = pending and self.simulator.peek("in_ready") == 1
            gave = self.simulator.peek("out_valid") == 1
            if gave:
                results.append(
                    unpack_elements(
                        self.simulator.peek("out"), self.width, TILE
                    )
                )
            self.simulator.tick()
            if took:
                pending.pop(0)
            cycle += 1
        self.cycles = cycle
        return results

"""Synthetic stress netlists built directly on the RTL substrate.

The catalog designs are datapath-dominated: wide arithmetic, few
latency-insensitive queues.  The simulation backends' trickiest code —
FIFO occupancy-driven ready/valid handshakes — is barely exercised by
them, so the differential-equivalence suite and the backend benchmark
add :func:`fifo_pipeline`, a deliberately FIFO-heavy module: a chain of
``fifo`` cells coupled by small arithmetic stages, with backpressure
flowing the whole way from ``out_ready`` to ``in_ready``.
"""

from __future__ import annotations

from ..rtl import Module


def fifo_pipeline(stages: int = 4, width: int = 16, depth: int = 3) -> Module:
    """A ready/valid pipeline of ``stages`` FIFOs with comb glue.

    Between consecutive FIFOs the data is bumped by a stage-specific
    constant, so payloads are distinguishable end to end; the valid
    chain follows the data and the ready chain runs backwards, making
    every FIFO's occupancy depend on the whole downstream state — the
    pattern that flushes out latch-ordering bugs in a backend.
    """
    if stages < 1:
        raise ValueError("fifo_pipeline needs at least one stage")
    module = Module(f"FifoPipe{stages}x{width}")
    in_data = module.add_input("in_data", width)
    in_valid = module.add_input("in_valid", 1)
    out_ready = module.add_input("out_ready", 1)
    in_ready = module.add_output("in_ready", 1)
    out_valid = module.add_output("out_valid", 1)
    out_data = module.add_output("out_data", width)

    # in_ready nets, first one being the module's own in_ready port; the
    # backwards ready chain needs stage i+1's net while wiring stage i.
    ready = [in_ready] + [
        module.fresh_net(1, f"rdy{i}") for i in range(1, stages)
    ]
    data, valid = in_data, in_valid
    for index in range(stages):
        last = index == stages - 1
        stage_out = out_data if last else module.fresh_net(width, f"d{index}")
        stage_valid = out_valid if last else module.fresh_net(1, f"v{index}")
        module.add_cell(
            "fifo",
            {
                "in_data": data,
                "in_valid": valid,
                "in_ready": ready[index],
                "out_data": stage_out,
                "out_valid": stage_valid,
                "out_ready": out_ready if last else ready[index + 1],
            },
            {"depth": depth},
            name=f"fifo{index}",
        )
        if not last:
            bump = module.constant(index + 1, width)
            data = module.binop("add", stage_out, bump, width)
            valid = stage_valid
    module.validate()
    return module

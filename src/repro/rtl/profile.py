"""Per-net activity profiles of simulated netlists (the PGO substrate).

A :class:`SimProfile` records what a design's nets actually *did* over a
deterministic seeded stimulus window: how often each net toggled, which
nets held one value for the whole window (and what that value was), and
how skewed every mux's select was.  The profile-guided ``-O3`` pipeline
(:mod:`repro.rtl.passes.pgo`) turns those observations into a
:class:`~repro.rtl.passes.pgo.PgoPlan` — dead-toggle gating of cold
logic cones, guarded constant specialization of observed-constant
roots, and hot-first cone ordering with expression fusion — and the
code generators consume the plan (see ``compile_netlist(plan=...)``).

Collection runs on any scalar backend through the uniform
``snapshot()`` hook (:class:`~repro.rtl.simulate.Simulator` reads its
``Net``-keyed value dict, :class:`~repro.rtl.compile.CompiledSimulator`
its flat slot list) and on the mega-lane vector backend through its
per-lane column snapshot — a net only counts as constant there when
*every lane* agreed on one value for the whole window, so multi-lane
profiles are strictly more conservative than single-lane ones.

Profiles are plain-data payloads persisted in the disk cache under the
``"profile"`` pseudo-stage keyed ``(structural_hash, PROFILE_VERSION)``
(see :class:`repro.driver.cache.ProfileStore`), so a warm process
starts pre-tuned: the first ``-O3`` run of a design pays one profiling
window, every later run — across sessions and grid workers — loads the
observations from disk.

Soundness never depends on the window being representative: every
profile-guided transformation is either invariant-preserving by
construction (gating skips cones whose inputs provably did not change;
fusion is algebraic substitution) or guarded by a runtime check
(constant specialization re-checks the observed values every cycle and
falls back to the general path).  A wildly wrong profile can only cost
speed, never correctness — the differential gates assert exactly that.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from .netlist import Module, NetlistError, comb_topo_order, flatten
from .simulate import random_stimulus, random_stimulus_batch

#: Version of the profile payload's shape *and* of what the recorded
#: quantities mean.  Part of every persisted profile's key: bump it
#: whenever collection semantics change so stale observations become
#: cache misses instead of steering new plans.
PROFILE_VERSION = 1

#: Default stimulus window (cycles) and seed of a collection run.  The
#: window is deliberately short — profiles guide heuristics, they do
#: not gate correctness — and the seed is fixed so the same design
#: always yields the same profile (and therefore the same plan digest,
#: which feeds cache keys).
DEFAULT_PROFILE_CYCLES = 256
PROFILE_SEED = 0x9F


def profile_cycles() -> int:
    """The collection window: ``$REPRO_PROFILE_CYCLES`` or the default."""
    return max(
        2,
        int(os.environ.get("REPRO_PROFILE_CYCLES", DEFAULT_PROFILE_CYCLES)),
    )


class SimProfile:
    """One design's observed per-net activity over a stimulus window."""

    __slots__ = (
        "structural_hash",
        "cycles",
        "seed",
        "lanes",
        "backend",
        "toggles",
        "constants",
        "mux_ones",
        "_digest",
    )

    def __init__(
        self,
        structural_hash: str,
        cycles: int,
        seed: int,
        lanes: int,
        backend: str,
        toggles: Dict[str, int],
        constants: Dict[str, int],
        mux_ones: Dict[str, int],
    ):
        self.structural_hash = structural_hash
        self.cycles = int(cycles)
        self.seed = int(seed)
        self.lanes = int(lanes)
        self.backend = backend
        #: net name → number of sampled cycles whose post-evaluate value
        #: differed from the previous cycle's (first sample never counts).
        self.toggles = dict(toggles)
        #: net name → the single value the net held on *every* sampled
        #: cycle (and, multi-lane, in every lane).  Exactly the nets
        #: with a zero toggle count.
        self.constants = dict(constants)
        #: mux cell name → cycles its select's low bit sampled 1 (lane 0
        #: on lane engines) — the select-skew record.
        self.mux_ones = dict(mux_ones)
        self._digest: Optional[str] = None

    def toggle_rate(self, net_name: str) -> float:
        """Fraction of sampled transitions on which the net changed."""
        if self.cycles <= 1:
            return 0.0
        return self.toggles.get(net_name, 0) / (self.cycles - 1)

    def to_payload(self) -> Dict[str, object]:
        """The plain-data persisted form (see ``ProfileStore``)."""
        return {
            "version": PROFILE_VERSION,
            "structural_hash": self.structural_hash,
            "cycles": self.cycles,
            "seed": self.seed,
            "lanes": self.lanes,
            "backend": self.backend,
            "toggles": dict(self.toggles),
            "constants": dict(self.constants),
            "mux_ones": dict(self.mux_ones),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SimProfile":
        return cls(
            payload["structural_hash"],
            payload["cycles"],
            payload["seed"],
            payload["lanes"],
            payload["backend"],
            payload["toggles"],
            payload["constants"],
            payload["mux_ones"],
        )

    def digest(self) -> str:
        """Stable content address of the profile (feeds plan digests and
        therefore optimize/codegen cache keys)."""
        if self._digest is None:
            canonical = json.dumps(self.to_payload(), sort_keys=True)
            self._digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        return self._digest

    def __repr__(self):
        return (
            f"SimProfile({self.structural_hash}, {self.cycles} cycles, "
            f"{self.backend} x{self.lanes}, "
            f"{len(self.constants)} constant nets)"
        )


def valid_profile_payload(payload, structural_hash: str) -> bool:
    """Is ``payload`` a well-formed profile entry for this design?

    The single validation authority for persisted profiles: the store
    applies it on load (so its hit/miss counters reflect *usable*
    entries) and ``SimProfile.from_payload`` callers can re-apply it as
    a cheap guard against arbitrary duck-typed stores.
    """
    return (
        isinstance(payload, dict)
        and payload.get("version") == PROFILE_VERSION
        and payload.get("structural_hash") == structural_hash
        and isinstance(payload.get("cycles"), int)
        and payload.get("cycles", 0) >= 2
        and isinstance(payload.get("lanes"), int)
        and isinstance(payload.get("toggles"), dict)
        and isinstance(payload.get("constants"), dict)
        and isinstance(payload.get("mux_ones"), dict)
    )


def _flat(module: Module) -> Module:
    if any(c.kind == "submodule" for c in module.cells.values()):
        module = flatten(module)
    module.validate()
    return module


# -- the root/cone structure every PGO transformation shares ------------


def root_nets(module: Module):
    """The nets a cycle's combinational settling is a pure function of:
    input ports plus every sequential output (register ``q``, FIFO
    ``in_ready``/``out_valid``/``out_data``).  Everything combinational
    is a deterministic function of these — which is what makes skipping
    an unchanged cone sound.
    """
    names = [net.name for _, net in module.inputs()]
    for cell in module.cells.values():
        if cell.kind in ("reg", "regen"):
            names.append(cell.pins["q"].name)
        elif cell.kind == "fifo":
            names.append(cell.pins["in_ready"].name)
            names.append(cell.pins["out_valid"].name)
            names.append(cell.pins["out_data"].name)
    return sorted(set(names))


def comb_cones(module: Module):
    """Partition the combinational cells into *cones* by root support.

    Every comb cell's support is the set of root nets (see
    :func:`root_nets`) its output transitively depends on; cells with
    identical support form one cone, kept in topological order.  The
    returned list of ``(support frozenset, [cells])`` is itself
    topologically ordered: a cone feeding another has strictly smaller
    support (the consumer's support contains the producer's, and equal
    supports share one cone), so ordering by support size — ties kept
    in first-appearance order — is a valid schedule.  If no net of a
    cone's support changed since the last evaluation, no input of any
    cell in the cone changed, and the whole cone may be skipped.
    """
    roots = set(root_nets(module))
    support: Dict[str, frozenset] = {name: frozenset((name,)) for name in roots}
    groups: Dict[frozenset, list] = {}
    appearance: Dict[frozenset, int] = {}
    for cell in comb_topo_order(module):
        sup = set()
        for pin, net in cell.pins.items():
            if pin == "out":
                continue
            sup |= support.get(net.name, frozenset())
        frozen = frozenset(sup)
        support[cell.pins["out"].name] = frozen
        if frozen not in groups:
            groups[frozen] = []
            appearance[frozen] = len(appearance)
        groups[frozen].append(cell)
    return [
        (sup, groups[sup])
        for sup in sorted(groups, key=lambda s: (len(s), appearance[s]))
    ]


def collect_profile(
    module: Module,
    cycles: Optional[int] = None,
    seed: int = PROFILE_SEED,
    backend: str = "compiled",
    lanes: int = 1,
    codegen_store=None,
    bias: float = 0.0,
) -> SimProfile:
    """Run a seeded stimulus window and record per-net activity.

    ``backend`` may be any registered scalar engine (``"interp"``,
    ``"compiled"``) or ``"vector"`` with ``lanes > 1`` — collection goes
    through each engine's ``snapshot()`` hook, so the instrumented loop
    is the same across backends.  The result is a pure function of
    ``(structural netlist, cycles, seed, lanes, bias)``: backends are
    bit-identical by differential contract, so which engine sampled the
    values does not affect the observations (and the tests assert it).
    """
    from .compile import make_simulator  # local: compile imports simulate

    module = _flat(module)
    if cycles is None:
        cycles = profile_cycles()
    cycles = int(cycles)
    if cycles < 2:
        raise NetlistError(f"profile window must be >= 2 cycles, got {cycles}")
    lanes = int(lanes)
    if lanes < 1:
        raise NetlistError(f"lanes must be >= 1, got {lanes}")
    if backend == "vector" and lanes == 1:
        lanes = 2  # the vector engine is pointless (and untested) at 1
    simulator = make_simulator(
        module, backend, lanes=lanes, codegen_store=codegen_store
    )
    names = sorted(module.nets)
    mux_sel = {
        cell.name: cell.pins["sel"].name
        for cell in module.cells.values()
        if cell.kind == "mux"
    }

    toggles = dict.fromkeys(names, 0)
    first: Dict[str, object] = {}
    prev: Dict[str, object] = {}
    changed_ever = set()
    mux_ones = dict.fromkeys(mux_sel, 0)

    if lanes == 1:
        stream = [random_stimulus(module, cycles, seed, bias)]
        vectors = stream[0]
    else:
        stream = random_stimulus_batch(module, cycles, lanes, seed, bias)
        # Re-shape per-lane streams into per-cycle lane vectors, the
        # poke shape lane engines take.
        vectors = [
            {
                name: [stream[lane][cycle][name] for lane in range(lanes)]
                for name in stream[0][cycle]
            }
            for cycle in range(cycles)
        ]

    for vector in vectors:
        simulator.poke(vector)
        simulator.evaluate()
        snap = simulator.snapshot(names)
        if not first:
            first.update(snap)
            prev.update(snap)
        else:
            for name in names:
                value = snap[name]
                if value != prev[name]:
                    toggles[name] += 1
                    prev[name] = value
                    changed_ever.add(name)
        for cell_name, sel_net in mux_sel.items():
            sel = snap[sel_net]
            if not isinstance(sel, int):  # lane engines snapshot tuples
                sel = sel[0]
            if sel & 1:
                mux_ones[cell_name] += 1
        simulator.tick()

    constants: Dict[str, int] = {}
    for name in names:
        if name in changed_ever:
            continue
        value = first[name]
        if isinstance(value, int):
            constants[name] = value
        elif len(set(value)) == 1:  # lane tuple: constant iff uniform
            constants[name] = value[0]
    return SimProfile(
        module.structural_hash(),
        cycles,
        seed,
        lanes,
        backend,
        {name: count for name, count in toggles.items() if count},
        constants,
        mux_ones,
    )

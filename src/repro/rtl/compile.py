"""Compiled simulation backend: netlist → specialized Python step code.

The interpreter (:class:`~repro.rtl.simulate.Simulator`) pays a string
dispatch on ``cell.kind`` and two dict lookups per pin *every cell,
every cycle* — the hottest loop in the repository.  This module pays
those costs **once per netlist** instead: the flattened module is
levelized (the same ``comb_topo_order`` the interpreter uses), every net
is assigned a dense slot in a flat list, and one straight-line Python
function is code-generated with a single masked slot-array assignment
per combinational cell, plus a sequential-latch epilogue for registers
and FIFOs.  The generated source is ``exec``'d once and memoized by
:meth:`~repro.rtl.netlist.Module.structural_hash`, so structurally equal
netlists — across sessions, grid workers and optimization ablations —
share one compilation.

Semantics are defined by the interpreter: every generated expression
mirrors :func:`~repro.rtl.simulate.eval_comb_cell` (unsigned modulo
2^width, div/mod-by-zero yields 0) and the latch epilogue mirrors
``Simulator.tick``.  :func:`differential_check` is the equivalence gate
— both backends driven by identical seeded stimulus must agree
bit-for-bit on every output, every cycle.

Both backends present the same :class:`SimBackend` surface
(poke/evaluate/peek/peek_net/tick/step/run/run_random), selected by name
through :data:`SIM_BACKENDS` / :func:`make_simulator` — which is how
``CompileSession(sim_backend=...)`` and the CLI's ``--sim-backend``
choose an engine without caring which one they got.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from typing import Protocol, runtime_checkable

from .netlist import Cell, Module, NetlistError, comb_topo_order, flatten
from .simulate import Simulator, random_stimulus


@runtime_checkable
class SimBackend(Protocol):
    """What every simulation engine exposes.

    ``Simulator`` (the per-cycle interpreter) and ``CompiledSimulator``
    (this module) are interchangeable behind it: identical poke/peek
    name spaces, identical two-phase evaluate/tick semantics, identical
    seeded-stimulus ``run_random``.
    """

    module: Module
    cycle: int

    def poke(self, inputs: Dict[str, int]) -> None: ...

    def evaluate(self) -> None: ...

    def peek(self, name: str) -> int: ...

    def peek_net(self, net_name: str) -> int: ...

    def tick(self) -> None: ...

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]: ...

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]: ...

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[Dict[str, int]]: ...


def _mask_literal(width: int) -> int:
    return (1 << width) - 1


class CompiledNetlist:
    """One netlist's compiled step code plus its slot layout.

    Shared (via the memo table) by every ``CompiledSimulator`` over a
    structurally equal module; holds no per-run state.
    """

    __slots__ = (
        "structural_hash",
        "slot_of",
        "n_slots",
        "reg_cells",
        "reg_inits",
        "fifo_cells",
        "fifo_depths",
        "evaluate",
        "latch",
        "source",
        "compile_seconds",
    )

    def __init__(
        self,
        structural_hash: str,
        slot_of: Dict[str, int],
        reg_cells: List[str],
        reg_inits: List[int],
        fifo_cells: List[str],
        fifo_depths: List[int],
        evaluate,
        latch,
        source: str,
        compile_seconds: float,
    ):
        self.structural_hash = structural_hash
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        self.reg_cells = reg_cells
        self.reg_inits = reg_inits
        self.fifo_cells = fifo_cells
        self.fifo_depths = fifo_depths
        self.evaluate = evaluate
        self.latch = latch
        self.source = source
        self.compile_seconds = compile_seconds

    def __repr__(self):
        return (
            f"CompiledNetlist({self.structural_hash}, {self.n_slots} slots, "
            f"{len(self.reg_cells)} regs, {len(self.fifo_cells)} fifos)"
        )


def _comb_expression(cell: Cell, slot: Dict[str, int]) -> str:
    """The right-hand side for one combinational cell's out assignment.

    Mirrors :func:`~repro.rtl.simulate.eval_comb_cell` exactly — any
    divergence here is caught by :func:`differential_check`.
    """
    pins = cell.pins
    kind = cell.kind
    out_mask = _mask_literal(pins["out"].width)
    if kind == "const":
        return repr(int(cell.params["value"]) & out_mask)
    if kind in ("add", "sub", "mul", "and", "or", "xor"):
        op = {"add": "+", "sub": "-", "mul": "*",
              "and": "&", "or": "|", "xor": "^"}[kind]
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"(s[{a}] {op} s[{b}]) & {out_mask}"
    if kind == "div":
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"(s[{a}] // s[{b}] if s[{b}] else 0) & {out_mask}"
    if kind == "mod":
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"(s[{a}] % s[{b}] if s[{b}] else 0) & {out_mask}"
    if kind == "eq":
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"1 if s[{a}] == s[{b}] else 0"
    if kind == "lt":
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"1 if s[{a}] < s[{b}] else 0"
    if kind == "not":
        return f"~s[{slot[pins['a'].name]}] & {out_mask}"
    if kind == "shl":
        amount = int(cell.params["amount"])
        return f"(s[{slot[pins['a'].name]}] << {amount}) & {out_mask}"
    if kind == "shr":
        amount = int(cell.params["amount"])
        return f"(s[{slot[pins['a'].name]}] >> {amount}) & {out_mask}"
    if kind == "mux":
        sel = slot[pins["sel"].name]
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"(s[{a}] if s[{sel}] & 1 else s[{b}]) & {out_mask}"
    if kind == "slice":
        lsb = int(cell.params["lsb"])
        return f"(s[{slot[pins['a'].name]}] >> {lsb}) & {out_mask}"
    if kind == "concat":
        a, b = slot[pins["a"].name], slot[pins["b"].name]
        return f"((s[{a}] << {pins['b'].width}) | s[{b}]) & {out_mask}"
    raise NetlistError(f"cannot compile cell kind {kind!r}")


def _generate_source(module: Module, slot: Dict[str, int]) -> Tuple[
    str, List[str], List[int], List[str], List[int]
]:
    """Generate the evaluate/latch pair for a flat, validated module."""
    reg_cells = sorted(
        name for name, c in module.cells.items() if c.kind in ("reg", "regen")
    )
    fifo_cells = sorted(
        name for name, c in module.cells.items() if c.kind == "fifo"
    )
    reg_index = {name: i for i, name in enumerate(reg_cells)}
    fifo_index = {name: i for i, name in enumerate(fifo_cells)}
    reg_inits = [
        int(module.cells[name].params.get("init", 0)) for name in reg_cells
    ]
    fifo_depths = [
        int(module.cells[name].params.get("depth", 2)) for name in fifo_cells
    ]

    ev: List[str] = ["def _evaluate(s, r, f):"]
    # Phase 1: drive sequential outputs from state (interpreter order:
    # state first, then combinational settling).
    for name in reg_cells:
        cell = module.cells[name]
        q = cell.pins["q"]
        ev.append(f"    s[{slot[q.name]}] = r[{reg_index[name]}] "
                  f"& {_mask_literal(q.width)}")
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        index = fifo_index[name]
        in_ready = slot[pins["in_ready"].name]
        out_valid = slot[pins["out_valid"].name]
        out_data = slot[pins["out_data"].name]
        data_mask = _mask_literal(pins["out_data"].width)
        ev.append(f"    q = f[{index}]")
        ev.append(f"    s[{in_ready}] = 1 if len(q) < {fifo_depths[index]} "
                  f"else 0")
        ev.append("    if q:")
        ev.append(f"        s[{out_valid}] = 1")
        ev.append(f"        s[{out_data}] = q[0] & {data_mask}")
        ev.append("    else:")
        ev.append(f"        s[{out_valid}] = 0")
        ev.append(f"        s[{out_data}] = 0")
    # Phase 2: straight-line combinational assignments, producers first.
    for cell in comb_topo_order(module):
        out = slot[cell.pins["out"].name]
        ev.append(f"    s[{out}] = {_comb_expression(cell, slot)}")
    if len(ev) == 1:
        ev.append("    pass")

    lt: List[str] = ["def _latch(s, r, f):"]
    # Registers read nets (written only by evaluate) and write reg state,
    # so in-place assignment matches the interpreter's two-phase update.
    for name in reg_cells:
        cell = module.cells[name]
        d = slot[cell.pins["d"].name]
        if cell.kind == "reg":
            lt.append(f"    r[{reg_index[name]}] = s[{d}]")
        else:  # regen
            en = slot[cell.pins["en"].name]
            lt.append(f"    if s[{en}] & 1:")
            lt.append(f"        r[{reg_index[name]}] = s[{d}]")
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        out_ready = slot[pins["out_ready"].name]
        out_valid = slot[pins["out_valid"].name]
        in_valid = slot[pins["in_valid"].name]
        in_ready = slot[pins["in_ready"].name]
        in_data = slot[pins["in_data"].name]
        lt.append(f"    q = f[{fifo_index[name]}]")
        lt.append(f"    if q and s[{out_ready}] & 1 and s[{out_valid}] & 1:")
        lt.append("        q.popleft()")
        lt.append(f"    if s[{in_valid}] & 1 and s[{in_ready}] & 1:")
        lt.append(f"        q.append(s[{in_data}])")
    if len(lt) == 1:
        lt.append("    pass")

    source = "\n".join(ev) + "\n\n\n" + "\n".join(lt) + "\n"
    return source, reg_cells, reg_inits, fifo_cells, fifo_depths


#: structural hash → CompiledNetlist, shared process-wide.  Keyed on the
#: full structural identity, so a pass pipeline that rewrites a module
#: (new hash) can never be served stale step code.
_MEMO: Dict[str, CompiledNetlist] = {}
_MEMO_LOCK = threading.Lock()


def compile_netlist(module: Module) -> CompiledNetlist:
    """Compile a flat module to specialized step code (memoized).

    The module must already be flat and valid — ``CompiledSimulator``
    takes care of flattening; direct callers flatten themselves.
    """
    key = module.structural_hash()
    with _MEMO_LOCK:
        cached = _MEMO.get(key)
    if cached is not None:
        return cached
    start = time.perf_counter()
    slot = {name: index for index, name in enumerate(sorted(module.nets))}
    source, reg_cells, reg_inits, fifo_cells, fifo_depths = _generate_source(
        module, slot
    )
    namespace: Dict[str, object] = {}
    code = compile(source, f"<compiled:{module.name}:{key}>", "exec")
    exec(code, namespace)
    compiled = CompiledNetlist(
        key,
        slot,
        reg_cells,
        reg_inits,
        fifo_cells,
        fifo_depths,
        namespace["_evaluate"],
        namespace["_latch"],
        source,
        time.perf_counter() - start,
    )
    with _MEMO_LOCK:
        # A racing thread may have published first; either object is
        # valid (pure function of the structural key), keep the winner.
        return _MEMO.setdefault(key, compiled)


def clear_compile_memo() -> None:
    """Drop every memoized compilation (mainly for tests)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def compile_memo_size() -> int:
    with _MEMO_LOCK:
        return len(_MEMO)


class CompiledSimulator:
    """Drop-in :class:`SimBackend` running code-generated step functions.

    Bit-identical to :class:`~repro.rtl.simulate.Simulator` by
    construction (see :func:`differential_check`); several times faster
    because the per-cycle work is straight-line list indexing instead of
    per-cell dispatch over ``Net``-keyed dicts.
    """

    def __init__(self, module: Module):
        if any(c.kind == "submodule" for c in module.cells.values()):
            self.module = flatten(module)
        else:
            self.module = module
        self.module.validate()
        self.program = compile_netlist(self.module)
        self._slots: List[int] = [0] * self.program.n_slots
        self._regs: List[int] = list(self.program.reg_inits)
        self._fifos: List[deque] = [deque() for _ in self.program.fifo_depths]
        self._evaluate = self.program.evaluate
        self._latch = self.program.latch
        slot_of = self.program.slot_of
        self._input_slots = {
            name: (slot_of[net.name], _mask_literal(net.width))
            for name, net in self.module.inputs()
        }
        self._output_slots = [
            (name, slot_of[net.name]) for name, net in self.module.outputs()
        ]
        self.cycle = 0

    # ------------------------------------------------------------------

    def poke(self, inputs: Dict[str, int]) -> None:
        slots = self._slots
        input_slots = self._input_slots
        for name, value in inputs.items():
            entry = input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            index, mask = entry
            slots[index] = int(value) & mask

    def evaluate(self) -> None:
        self._evaluate(self._slots, self._regs, self._fifos)

    def peek(self, name: str) -> int:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self._slots[self.program.slot_of[net.name]]

    def peek_net(self, net_name: str) -> int:
        index = self.program.slot_of.get(net_name)
        if index is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        return self._slots[index]

    def tick(self) -> None:
        self._latch(self._slots, self._regs, self._fifos)
        self.cycle += 1

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        if inputs:
            self.poke(inputs)
        slots = self._slots
        self._evaluate(slots, self._regs, self._fifos)
        outputs = {name: slots[index] for name, index in self._output_slots}
        self._latch(slots, self._regs, self._fifos)
        self.cycle += 1
        return outputs

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]:
        step = self.step
        return [step(inputs) for inputs in input_stream]

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[Dict[str, int]]:
        return self.run(random_stimulus(self.module, cycles, seed, bias))


#: backend name → engine class; the vocabulary ``CompileSession`` and
#: the CLI's ``--sim-backend`` validate against.
SIM_BACKENDS = {
    "interp": Simulator,
    "compiled": CompiledSimulator,
}

#: backend name → semantic version, mirroring ``Pass.version``: bump a
#: backend's entry whenever its simulation semantics change, so that
#: persistent simulate artifacts produced by the old code are cache
#: misses instead of silently masking the fix (the differential gates
#: compare *computed* traces, not stale ones).
SIM_BACKEND_VERSIONS = {
    "interp": 1,
    "compiled": 1,
}


def backend_fingerprint(name: str) -> str:
    """``name@version`` — the backend's contribution to cache keys."""
    resolve_backend(name)
    return f"{name}@{SIM_BACKEND_VERSIONS[name]}"


def resolve_backend(name: str):
    """Backend name → engine class, with a helpful rejection."""
    try:
        return SIM_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown sim backend {name!r}; available: {sorted(SIM_BACKENDS)}"
        ) from None


def make_simulator(module: Module, backend: str = "interp") -> SimBackend:
    """Instantiate the named engine over ``module``."""
    return resolve_backend(backend)(module)


def differential_check(
    module: Module, cycles: int = 128, seed: int = 0, bias: float = 0.0
) -> bool:
    """True iff both backends agree bit-for-bit under shared stimulus.

    The correctness gate for the compiled backend: identical seeded
    input vectors drive a fresh interpreter and a fresh compiled
    simulator; every output must match on every cycle.
    """
    interp = Simulator(module)
    compiled = CompiledSimulator(module)
    stimulus = random_stimulus(interp.module, cycles, seed, bias)
    return interp.run(stimulus) == compiled.run(stimulus)

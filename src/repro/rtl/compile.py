"""Compiled simulation backend: netlist → specialized Python step code.

The interpreter (:class:`~repro.rtl.simulate.Simulator`) pays a string
dispatch on ``cell.kind`` and two dict lookups per pin *every cell,
every cycle* — the hottest loop in the repository.  This module pays
those costs **once per netlist** instead: the flattened module is
levelized (the same ``comb_topo_order`` the interpreter uses), every net
is assigned a dense slot in a flat list, and one straight-line Python
function is code-generated with a single masked slot-array assignment
per combinational cell, plus a sequential-latch epilogue for registers
and FIFOs.  The generated source is ``exec``'d once and memoized by
:meth:`~repro.rtl.netlist.Module.structural_hash`, so structurally equal
netlists — across sessions, grid workers and optimization ablations —
share one compilation.

Semantics are defined by the interpreter: every generated expression
mirrors :func:`~repro.rtl.simulate.eval_comb_cell` (unsigned modulo
2^width, div/mod-by-zero yields 0) and the latch epilogue mirrors
``Simulator.tick``.  :func:`differential_check` is the equivalence gate
— both backends driven by identical seeded stimulus must agree
bit-for-bit on every output, every cycle.

Both backends present the same :class:`SimBackend` surface
(poke/evaluate/peek/peek_net/tick/step/run/run_random, plus the batched
run_batch/run_random_batch), selected by name through
:data:`SIM_BACKENDS` / :func:`make_simulator` — which is how
``CompileSession(sim_backend=...)`` and the CLI's ``--sim-backend``
choose an engine without caring which one they got.

**Batched multi-lane mode.**  ``compile_netlist(module, lanes=K)``
generates a *lane-parallel* step function: every net slot holds one
Python integer packing K lane values at a fixed bit stride, and each
combinational cell becomes one or two big-integer operations that
advance all K lanes at once (SWAR — SIMD within a register, except the
register is a CPython bignum and its arithmetic runs in C).  Adds carry
into a per-lane guard bit, subtracts borrow against an injected guard,
compares reduce through the lane's top bit, and muxes blend through a
spread select mask; only ``mul``/``div``/``mod`` (true cross-products)
and out-of-stride shifts fall back to a per-lane loop over byte-sliced
lane fields.  Register state latches as a single reference copy per
cell — K lanes for the cost of one — which is why register-heavy
netlists batch best.  :class:`BatchedCompiledSimulator` owns the packed
state; scalar backends reach it through ``run_batch``.

**Three codegen targets.**  This module owns two of them — the scalar
generator (``_generate_source``: one straight-line masked assignment
per cell) and the SWAR batched generator (``_generate_batched_source``
above) — and :mod:`repro.rtl.vectorize` adds the third: word-packed
lane *columns* (numpy ``uint64`` arrays, or ``array('Q')`` buffers as a
pure-stdlib fallback) where one vectorized operation advances thousands
of lanes at fixed per-op overhead.  SWAR cost grows with the packed
bignum's limb count and saturates between 16 and 64 lanes; the vector
target keeps scaling past that, which is why mega-lane sweeps belong
there.  All three emit bit-identical traces — the same
:func:`differential_check` gates each one against the interpreter.

Backend selection is measured, not guessed: the static
:func:`swar_profitable` predicate keeps the batched path away from
designs whose ineligible-cell fraction predicts a slowdown (the scalar
``run_batch`` falls back to sequential lanes there), and
:mod:`repro.rtl.tuner` runs a short per-design calibration, persists
the winning (backend, lanes) in the disk cache, and resolves the
``"auto"`` backend from those measurements.

**Persistent codegen.**  Generating the step source levelizes the
netlist and builds a netlist-sized string — for large modules that is
the dominant cost of a cold simulator.  ``compile_netlist`` therefore
accepts a ``store`` (see ``repro.driver.cache.CodegenStore``): the
generated source and slot layout are persisted keyed by
``(structural_hash, backend, lanes, CODEGEN_VERSION)`` — the backend
tag (``"scalar"``, ``"swar"``, ``"vector-numpy"``, ``"vector-stdlib"``)
keeps the four generators' entries from shadowing each other — so a
warm process skips levelization and code generation entirely and only
pays ``compile()`` + ``exec()``.

**Profile-guided programs.**  ``compile_netlist(module, plan=plan)``
(a :class:`~repro.rtl.passes.pgo.PgoPlan` distilled from a
:class:`~repro.rtl.profile.SimProfile`) selects a fourth, scalar-only
generator: single-reader expressions fuse into their consumers, cones
whose observed-cold roots didn't change this cycle are skipped behind
per-root change flags kept in extra state slots, and observed-constant
roots gate a constant-folded specialized body behind a per-cycle guard
that re-checks the observations — so the program is bit-identical to
the plain one on *every* stimulus, profiled or not, and
``differential_check(plan=...)`` asserts it.  These programs persist
under ``pgo-<plan digest>`` backend tags.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from typing import Protocol, runtime_checkable

from .netlist import Cell, Module, NetlistError, comb_topo_order, flatten
from .simulate import (
    Simulator,
    derive_lane_seed,
    random_stimulus,
    random_stimulus_batch,
)

#: Version of the *generated code's* shape.  Part of every persisted
#: codegen entry's key: bump it whenever a generator changes what it
#: emits (or the payload dict changes shape), so stale persisted
#: sources become cache misses instead of resurrecting old step
#: semantics.  v2: payloads carry a ``backend`` tag
#: (scalar/swar/vector-*) now that three generators share the store.
#: v3: profile-guided scalar programs (``pgo-<plan digest>`` tags) with
#: ``extra_slots``/``inlined_nets`` payload fields.
CODEGEN_VERSION = 3


@runtime_checkable
class SimBackend(Protocol):
    """What every simulation engine exposes.

    ``Simulator`` (the per-cycle interpreter) and ``CompiledSimulator``
    (this module) are interchangeable behind it: identical poke/peek
    name spaces, identical two-phase evaluate/tick semantics, identical
    seeded-stimulus ``run_random``.
    """

    module: Module
    cycle: int

    def poke(self, inputs: Dict[str, int]) -> None: ...

    def evaluate(self) -> None: ...

    def peek(self, name: str) -> int: ...

    def peek_net(self, net_name: str) -> int: ...

    def tick(self) -> None: ...

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]: ...

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]: ...

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[Dict[str, int]]: ...

    def run_batch(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]: ...

    def run_random_batch(
        self, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]: ...


def _mask_literal(width: int) -> int:
    return (1 << width) - 1


def _flattened(module: Module) -> Module:
    """The validated flat module a simulator runs (shared preamble)."""
    if any(c.kind == "submodule" for c in module.cells.values()):
        module = flatten(module)
    module.validate()
    return module


def _lane_unit(lanes: int, stride: int) -> int:
    """1 at every lane field's base bit; multiplying a (< 2^stride)
    scalar by it replicates the scalar into every lane."""
    return ((1 << (lanes * stride)) - 1) // ((1 << stride) - 1)


class CompiledNetlist:
    """One netlist's compiled step code plus its slot layout.

    Shared (via the memo table) by every ``CompiledSimulator`` over a
    structurally equal module; holds no per-run state.
    """

    __slots__ = (
        "structural_hash",
        "slot_of",
        "n_slots",
        "reg_cells",
        "reg_inits",
        "fifo_cells",
        "fifo_depths",
        "evaluate",
        "latch",
        "source",
        "compile_seconds",
        "lanes",
        "stride",
        "from_store",
        "extra_slots",
        "inlined_nets",
    )

    def __init__(
        self,
        structural_hash: str,
        slot_of: Dict[str, int],
        reg_cells: List[str],
        reg_inits: List[int],
        fifo_cells: List[str],
        fifo_depths: List[int],
        evaluate,
        latch,
        source: str,
        compile_seconds: float,
        lanes: Optional[int] = None,
        stride: int = 0,
        from_store: bool = False,
        extra_slots: int = 0,
        inlined_nets: Tuple[str, ...] = (),
    ):
        self.structural_hash = structural_hash
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        self.reg_cells = reg_cells
        self.reg_inits = reg_inits
        self.fifo_cells = fifo_cells
        self.fifo_depths = fifo_depths
        self.evaluate = evaluate
        self.latch = latch
        self.source = source
        self.compile_seconds = compile_seconds
        #: lane count the step code was generated for (None = scalar).
        self.lanes = lanes
        #: bit stride between lane fields in packed mode (0 = scalar).
        self.stride = stride
        #: True when the source came from a persistent codegen store
        #: rather than being generated in this process.
        self.from_store = from_store
        #: Bookkeeping slots past ``n_slots`` (profile-guided programs
        #: track previous root values there; 0 for plain programs).
        self.extra_slots = int(extra_slots)
        #: Net names fused into their sole consumer by profile-guided
        #: codegen — their slots are never written (``peek_net`` on one
        #: is an error); empty for plain programs.
        self.inlined_nets = tuple(inlined_nets)

    def __repr__(self):
        return (
            f"CompiledNetlist({self.structural_hash}, {self.n_slots} slots, "
            f"{len(self.reg_cells)} regs, {len(self.fifo_cells)} fifos, "
            f"lanes={self.lanes})"
        )


def _comb_expression_atoms(cell: Cell, atom) -> str:
    """One combinational cell's RHS over caller-supplied input atoms.

    ``atom(net_name)`` renders one input read — a slot access for the
    plain generators, possibly a parenthesized fused sub-expression or
    a propagated constant literal for the profile-guided generator.
    Atoms that are not bare slot reads MUST self-parenthesize: they are
    substituted into every operator position below.  Mirrors
    :func:`~repro.rtl.simulate.eval_comb_cell` exactly — any divergence
    here is caught by :func:`differential_check`.
    """
    pins = cell.pins
    kind = cell.kind
    out_mask = _mask_literal(pins["out"].width)
    if kind == "const":
        return repr(int(cell.params["value"]) & out_mask)
    if kind in ("add", "sub", "mul", "and", "or", "xor"):
        op = {"add": "+", "sub": "-", "mul": "*",
              "and": "&", "or": "|", "xor": "^"}[kind]
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"({a} {op} {b}) & {out_mask}"
    if kind == "div":
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"({a} // {b} if {b} else 0) & {out_mask}"
    if kind == "mod":
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"({a} % {b} if {b} else 0) & {out_mask}"
    if kind == "eq":
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"1 if {a} == {b} else 0"
    if kind == "lt":
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"1 if {a} < {b} else 0"
    if kind == "not":
        return f"~{atom(pins['a'].name)} & {out_mask}"
    if kind == "shl":
        amount = int(cell.params["amount"])
        return f"({atom(pins['a'].name)} << {amount}) & {out_mask}"
    if kind == "shr":
        amount = int(cell.params["amount"])
        return f"({atom(pins['a'].name)} >> {amount}) & {out_mask}"
    if kind == "mux":
        sel = atom(pins["sel"].name)
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"({a} if {sel} & 1 else {b}) & {out_mask}"
    if kind == "slice":
        lsb = int(cell.params["lsb"])
        return f"({atom(pins['a'].name)} >> {lsb}) & {out_mask}"
    if kind == "concat":
        a, b = atom(pins["a"].name), atom(pins["b"].name)
        return f"(({a} << {pins['b'].width}) | {b}) & {out_mask}"
    raise NetlistError(f"cannot compile cell kind {kind!r}")


def _comb_expression(cell: Cell, slot: Dict[str, int]) -> str:
    """The plain-slot RHS (byte-identical to the pre-refactor output)."""
    return _comb_expression_atoms(cell, lambda name: f"s[{slot[name]}]")


def _seq_meta(module: Module) -> Tuple[
    List[str], List[int], List[str], List[int]
]:
    """Sorted register/FIFO cell lists with their inits and depths."""
    reg_cells = sorted(
        name for name, c in module.cells.items() if c.kind in ("reg", "regen")
    )
    fifo_cells = sorted(
        name for name, c in module.cells.items() if c.kind == "fifo"
    )
    reg_inits = [
        int(module.cells[name].params.get("init", 0)) for name in reg_cells
    ]
    fifo_depths = [
        int(module.cells[name].params.get("depth", 2)) for name in fifo_cells
    ]
    return reg_cells, reg_inits, fifo_cells, fifo_depths


def _drive_seq_lines(
    module: Module,
    slot: Dict[str, int],
    reg_cells: List[str],
    fifo_cells: List[str],
    fifo_depths: List[int],
) -> List[str]:
    """Phase 1 of evaluate: drive sequential outputs from state
    (interpreter order: state first, then combinational settling)."""
    lines: List[str] = []
    for index, name in enumerate(reg_cells):
        cell = module.cells[name]
        q = cell.pins["q"]
        lines.append(f"    s[{slot[q.name]}] = r[{index}] "
                     f"& {_mask_literal(q.width)}")
    for index, name in enumerate(fifo_cells):
        cell = module.cells[name]
        pins = cell.pins
        in_ready = slot[pins["in_ready"].name]
        out_valid = slot[pins["out_valid"].name]
        out_data = slot[pins["out_data"].name]
        data_mask = _mask_literal(pins["out_data"].width)
        lines.append(f"    q = f[{index}]")
        lines.append(f"    s[{in_ready}] = 1 if len(q) < {fifo_depths[index]} "
                     f"else 0")
        lines.append("    if q:")
        lines.append(f"        s[{out_valid}] = 1")
        lines.append(f"        s[{out_data}] = q[0] & {data_mask}")
        lines.append("    else:")
        lines.append(f"        s[{out_valid}] = 0")
        lines.append(f"        s[{out_data}] = 0")
    return lines


def _latch_lines(
    module: Module,
    slot: Dict[str, int],
    reg_cells: List[str],
    fifo_cells: List[str],
) -> List[str]:
    """The latch body: registers read nets (written only by evaluate)
    and write reg state, so in-place assignment matches the
    interpreter's two-phase update."""
    lines: List[str] = ["def _latch(s, r, f):"]
    for index, name in enumerate(reg_cells):
        cell = module.cells[name]
        d = slot[cell.pins["d"].name]
        if cell.kind == "reg":
            lines.append(f"    r[{index}] = s[{d}]")
        else:  # regen
            en = slot[cell.pins["en"].name]
            lines.append(f"    if s[{en}] & 1:")
            lines.append(f"        r[{index}] = s[{d}]")
    for index, name in enumerate(fifo_cells):
        cell = module.cells[name]
        pins = cell.pins
        out_ready = slot[pins["out_ready"].name]
        out_valid = slot[pins["out_valid"].name]
        in_valid = slot[pins["in_valid"].name]
        in_ready = slot[pins["in_ready"].name]
        in_data = slot[pins["in_data"].name]
        lines.append(f"    q = f[{index}]")
        lines.append(f"    if q and s[{out_ready}] & 1 and s[{out_valid}] & 1:")
        lines.append("        q.popleft()")
        lines.append(f"    if s[{in_valid}] & 1 and s[{in_ready}] & 1:")
        lines.append(f"        q.append(s[{in_data}])")
    if len(lines) == 1:
        lines.append("    pass")
    return lines


def _generate_source(module: Module, slot: Dict[str, int]) -> Tuple[
    str, List[str], List[int], List[str], List[int]
]:
    """Generate the evaluate/latch pair for a flat, validated module."""
    reg_cells, reg_inits, fifo_cells, fifo_depths = _seq_meta(module)

    ev: List[str] = ["def _evaluate(s, r, f):"]
    ev.extend(_drive_seq_lines(module, slot, reg_cells, fifo_cells,
                               fifo_depths))
    # Phase 2: straight-line combinational assignments, producers first.
    for cell in comb_topo_order(module):
        out = slot[cell.pins["out"].name]
        ev.append(f"    s[{out}] = {_comb_expression(cell, slot)}")
    if len(ev) == 1:
        ev.append("    pass")

    lt = _latch_lines(module, slot, reg_cells, fifo_cells)
    source = "\n".join(ev) + "\n\n\n" + "\n".join(lt) + "\n"
    return source, reg_cells, reg_inits, fifo_cells, fifo_depths


# -- profile-guided (plan-driven) scalar code generation ----------------


#: A cone is only gated when its root support has at most this many
#: nets: the skip test is an ``or`` over per-root change flags, and a
#: giant support would cost more to test than the cone saves.
GATE_SUPPORT_CAP = 8


def _generate_pgo_source(
    module: Module, slot: Dict[str, int], plan
) -> Tuple[str, List[str], List[int], List[str], List[int], int, List[str]]:
    """The profile-guided scalar generator (``compile_netlist(plan=)``).

    Emits the same ``_evaluate``/``_latch`` signature as the plain
    scalar generator, with three plan-driven transformations on the
    combinational phase:

    * **fusion** — nets in ``plan.fuse_nets`` (single-reader,
      structurally safe) emit no assignment; their defining expression
      inlines parenthesized into the sole consumer, eliminating a slot
      store + load per fused net per cycle;
    * **dead-toggle gating** — cones (see
      :func:`~repro.rtl.profile.comb_cones`) whose support is entirely
      cold are wrapped in ``if <any support root changed>``; previous
      root values live in ``extra_slots`` appended to the state list,
      initialized to ``None`` so the first evaluation unconditionally
      fires everything (``None != value``), and pure-constant cones run
      on the first evaluation only;
    * **guarded constant specialization** — when the plan observed
      constant roots, the comb phase is emitted twice behind a per-call
      guard comparing those roots to their observed values: the
      specialized branch constant-propagates the observations through
      :func:`~repro.rtl.simulate.eval_comb_cell` (muxes with a known
      select collapse to the taken arm), the general branch assumes
      nothing.  A cycle where the guard fails simply takes the general
      branch — a wrong profile can never produce a wrong value.

    Cones are additionally scheduled hot-first *within* each
    support-size level (cones of equal support size cannot feed each
    other: feeding implies strictly growing support), so the hottest
    logic runs contiguously.
    """
    from .profile import comb_cones  # local: profile imports this module
    from .simulate import eval_comb_cell

    reg_cells, reg_inits, fifo_cells, fifo_depths = _seq_meta(module)
    nets = module.nets
    order = comb_topo_order(module)
    producers = {cell.pins["out"].name: cell for cell in order}
    fuse = frozenset(plan.fuse_nets) & set(producers)

    # Cone schedule: topo levels by support size, hot-first within one.
    hot = plan.hot_rank

    def heat(cells: List[Cell]) -> int:
        return max(
            (hot.get(cell.pins["out"].name, 0) for cell in cells), default=0
        )

    cones = [
        entry[1]
        for entry in sorted(
            enumerate(comb_cones(module)),
            key=lambda e: (len(e[1][0]), -heat(e[1][1]), e[0]),
        )
    ]

    # Gating: which cones, and which roots need change tracking.
    cold = set(plan.cold_roots)
    gated: List[bool] = []
    tracked_set = set()
    for sup, _cells in cones:
        gate = (not sup) or (len(sup) <= GATE_SUPPORT_CAP and sup <= cold)
        gated.append(gate)
        if gate:
            tracked_set |= sup
    any_gated = any(gated)
    tracked = sorted(tracked_set)
    flag_slot = len(slot)  # None until the first evaluation has run
    prev_slot = {name: flag_slot + 1 + i for i, name in enumerate(tracked)}
    change_var = {name: f"_c{i}" for i, name in enumerate(tracked)}
    extra_slots = (1 + len(tracked)) if any_gated else 0

    # Constant propagation from the observed-constant roots (only ever
    # used on the guarded specialized branch).
    guard_items = sorted(
        (name, int(value) & _mask_literal(nets[name].width))
        for name, value in plan.const_roots.items()
        if name in nets
    )
    known: Dict[object, int] = {}
    if guard_items:
        for name, value in guard_items:
            known[nets[name]] = value
        for cell in order:
            pins = cell.pins
            out = pins["out"]
            if cell.kind == "mux" and pins["sel"] in known:
                chosen = pins["a"] if known[pins["sel"]] & 1 else pins["b"]
                if chosen in known:
                    known[out] = known[chosen] & _mask_literal(out.width)
                continue
            if all(
                net in known for pin, net in pins.items() if pin != "out"
            ):
                known[out] = eval_comb_cell(cell, known)

    def body(indent: str, spec: bool) -> List[str]:
        """One comb phase; ``spec`` folds the propagated constants."""

        def atom(name: str) -> str:
            if spec and nets[name] in known:
                return repr(known[nets[name]])
            if name in fuse:
                return f"({expression(producers[name])})"
            return f"s[{slot[name]}]"

        def expression(cell: Cell) -> str:
            out = cell.pins["out"]
            if spec:
                if out in known:
                    return repr(known[out])
                if cell.kind == "mux" and cell.pins["sel"] in known:
                    sel = known[cell.pins["sel"]]
                    chosen = cell.pins["a"] if sel & 1 else cell.pins["b"]
                    return f"{atom(chosen.name)} & {_mask_literal(out.width)}"
            return _comb_expression_atoms(cell, atom)

        lines: List[str] = []
        for (sup, cells), gate in zip(cones, gated):
            stmts = [
                f"s[{slot[cell.pins['out'].name]}] = {expression(cell)}"
                for cell in cells
                if cell.pins["out"].name not in fuse
            ]
            if not stmts:
                continue  # whole cone fused into consumers elsewhere
            if gate:
                if sup:
                    cond = " or ".join(
                        change_var[name] for name in sorted(sup)
                    )
                else:
                    cond = "_first"  # constants: first evaluation only
                lines.append(f"{indent}if {cond}:")
                lines.extend(f"{indent}    {stmt}" for stmt in stmts)
            else:
                lines.extend(f"{indent}{stmt}" for stmt in stmts)
        return lines

    ev: List[str] = ["def _evaluate(s, r, f):"]
    ev.extend(_drive_seq_lines(module, slot, reg_cells, fifo_cells,
                               fifo_depths))
    if any_gated:
        # Change detection: prev slots start as None, so every flag is
        # True on the first evaluation and nothing can be skipped
        # before it produced real values once.
        ev.append(f"    _first = s[{flag_slot}] is None")
        ev.append(f"    s[{flag_slot}] = 1")
        for name in tracked:
            var = change_var[name]
            ev.append(f"    {var} = s[{prev_slot[name]}] != s[{slot[name]}]")
            ev.append(f"    if {var}:")
            ev.append(f"        s[{prev_slot[name]}] = s[{slot[name]}]")
    if guard_items:
        guard = " and ".join(
            f"s[{slot[name]}] == {value}" for name, value in guard_items
        )
        ev.append(f"    if {guard}:")
        ev.extend(body("        ", spec=True) or ["        pass"])
        ev.append("    else:")
        ev.extend(body("        ", spec=False) or ["        pass"])
    else:
        ev.extend(body("    ", spec=False))
    if len(ev) == 1:
        ev.append("    pass")

    lt = _latch_lines(module, slot, reg_cells, fifo_cells)
    source = "\n".join(ev) + "\n\n\n" + "\n".join(lt) + "\n"
    return (source, reg_cells, reg_inits, fifo_cells, fifo_depths,
            extra_slots, sorted(fuse))


# -- batched (multi-lane) code generation -------------------------------


#: Comb-cell kinds the packed (SWAR) encoding can express; the rest —
#: true per-lane arithmetic (cross products, quotients) — always take
#: the per-lane loop.
_SWAR_KINDS = frozenset((
    "const", "add", "sub", "and", "or", "xor", "not",
    "eq", "lt", "mux", "shl", "shr", "slice", "concat",
))


def _swar_eligible(cell: Cell, stride: int) -> bool:
    """Can this cell be emitted as packed whole-batch operations?

    Every pin must fit a lane field (width <= stride - 2: one guard bit
    for carries, one top bit for the compare/borrow tricks) and the
    cell's shifts must stay inside one field.
    """
    if cell.kind not in _SWAR_KINDS:
        return False
    pins = cell.pins
    if max(pin.width for pin in pins.values()) > stride - 2:
        return False
    if cell.kind == "shl":
        return pins["a"].width + int(cell.params["amount"]) <= stride
    if cell.kind == "shr":
        return int(cell.params["amount"]) + pins["out"].width <= stride
    if cell.kind == "slice":
        lsb = int(cell.params["lsb"])
        if lsb == 0 and pins["a"].width <= pins["out"].width:
            return True
        return lsb + pins["out"].width <= stride
    if cell.kind == "concat":
        return pins["a"].width + pins["b"].width <= stride
    return True


def batched_stride(module: Module, lanes: int = 16) -> int:
    """Pick the lane-field bit stride for one batched compilation.

    Wider strides let more cells take the packed path (fields must hold
    the widest pin plus guard/top bits) but make *every* packed integer
    proportionally longer, taxing every operation — a handful of wide
    bus nets must not force a giant stride onto thousands of narrow
    cells.  Candidate strides (multiples of 64 up to the widest net)
    are scored with a small cost model: a packed cell costs ~1 plus a
    term linear in the packed integer's limb count, a lane-loop cell
    costs ~2 per lane.  Nets wider than the chosen stride's fields live
    as per-lane lists and their cells take the lane loop.
    """
    cells = [
        c for c in module.cells.values()
        if c.kind not in ("reg", "regen", "fifo", "submodule")
    ]
    maxw = max((net.width for net in module.nets.values()), default=1)
    limit = max(64, ((maxw + 2 + 63) // 64) * 64)
    lane_unit = 2.0 * lanes
    best, best_cost = 64, None
    for stride in range(64, limit + 1, 64):
        swar_unit = 0.75 + 0.024 * (lanes * stride / 64.0)
        cost = sum(
            swar_unit if _swar_eligible(cell, stride) else lane_unit
            for cell in cells
        )
        if best_cost is None or cost < best_cost:
            best, best_cost = stride, cost
    return best


def swar_profitable(module: Module, lanes: int) -> bool:
    """Does the SWAR batched encoding beat sequential scalar lanes?

    The static half of backend selection (the measured half is
    :mod:`repro.rtl.tuner`): a calibrated per-cell cost comparison
    between one lane-packed step and ``lanes`` scalar steps.  A packed
    cell costs a small constant plus a term linear in the packed
    integer's word count; an ineligible cell pays the per-lane loop
    *and* the byte-sliced unpack/pack conversions, which is what sinks
    designs like ``blas`` where the ineligible (``mul``) cells sit on
    wide nets — measured at 0.51x vs scalar at 16 lanes even though a
    naive eligible-fraction argument predicts a win.  Coefficients were
    fit against ``BENCH_sim.json`` and reproduce the measured
    faster/slower sign on every catalog design at 16 and 64 lanes.
    """
    lanes = int(lanes)
    if lanes <= 1:
        return False
    module = _flattened(module)
    cells = [
        c for c in module.cells.values()
        if c.kind not in ("reg", "regen", "fifo", "submodule")
    ]
    if not cells:
        return True  # register/FIFO-only: latch sharing always wins
    stride = batched_stride(module, lanes)
    words = lanes * stride / 64.0
    swar_cost = 0.0
    for cell in cells:
        if _swar_eligible(cell, stride):
            swar_cost += 0.75 + 0.024 * words
        else:
            swar_cost += lanes * (4.0 + 0.8 * stride / 64.0)
    return swar_cost < lanes * len(cells)


class _LaneConsts:
    """Packed-constant pool for one batched compilation.

    Every lane-replicated constant (masks, guards, the all-lanes ``1``)
    is emitted once as a module-level hex literal in the generated
    source and handed to the step functions as a keyword default, so
    inside the hot loop it is a ``LOAD_FAST`` instead of a dict lookup.
    """

    def __init__(self, lanes: int, stride: int):
        self.lanes = lanes
        self.stride = stride
        self.unit = _lane_unit(lanes, stride)
        self._names: Dict[int, str] = {}
        self.defs: List[Tuple[str, int]] = []

    def rep(self, scalar: int, hint: str, uses: set) -> str:
        """The name bound to ``scalar`` replicated into every lane."""
        packed = scalar * self.unit
        name = self._names.get(packed)
        if name is None:
            name = f"_{hint}"
            if any(name == existing for existing, _ in self.defs):
                name = f"_{hint}x{len(self.defs)}"
            self._names[packed] = name
            self.defs.append((name, packed))
        uses.add(name)
        return name

    def mask(self, width: int, uses: set) -> str:
        return self.rep((1 << width) - 1, f"M{width}", uses)


def _generate_batched_source(
    module: Module, slot: Dict[str, int], lanes: int
) -> Tuple[str, List[str], List[int], List[str], List[int], int]:
    """Generate the lane-parallel evaluate/latch pair.

    Two representations coexist, chosen per net by width:

    * **packed** (width <= stride - 2): lane ``k`` occupies bits
      ``[k*stride, k*stride + width)`` of one integer, and cells whose
      pins are all packed advance every lane in a couple of bignum ops;
    * **per-lane list** (wider): the slot holds K separate ints, and
      any cell touching one runs a per-lane loop, converting packed
      operands through byte-sliced ``_unpack``/``_pack`` helpers.

    The invariant every emitted statement preserves is that lane values
    are *clean* — strictly below ``2^width`` — which is what lets
    packed neighbours share one integer without masking on read.
    """
    stride = batched_stride(module, lanes)
    consts = _LaneConsts(lanes, stride)
    top_bit = stride - 1
    uses_ev: set = set()
    uses_lt: set = set()
    helpers_needed = [False]

    def wide(net) -> bool:
        return net.width > stride - 2

    def one(uses):
        return consts.rep(1, "ONE", uses)

    def top(uses):
        return consts.rep(1 << top_bit, "TOP", uses)

    def full(uses):
        return consts.rep((1 << top_bit) - 1, "FULL", uses)

    def rd_lanes(net) -> str:
        """Expression yielding the net's per-lane value list."""
        if wide(net):
            return f"s[{slot[net.name]}]"
        helpers_needed[0] = True
        return f"_unpack(s[{slot[net.name]}])"

    def comb_swar(cell: Cell) -> List[str]:
        pins = cell.pins
        kind = cell.kind
        out = pins["out"]
        so = slot[out.name]
        wo = out.width

        def sl(pin: str) -> str:
            return f"s[{slot[pins[pin].name]}]"

        def w(pin: str) -> int:
            return pins[pin].width

        if kind == "const":
            value = int(cell.params["value"]) & ((1 << wo) - 1)
            return [f"    s[{so}] = {consts.rep(value, f'V{so}', uses_ev)}"]
        if kind == "add":
            expr = f"({sl('a')} + {sl('b')})"
            if wo < max(w("a"), w("b")) + 1:
                expr += f" & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]
        if kind == "sub":
            guard = max(w("a"), w("b"), wo)
            hname = consts.rep(1 << guard, f"H{guard}", uses_ev)
            return [
                f"    s[{so}] = (({sl('a')} | {hname}) - {sl('b')})"
                f" & {consts.mask(wo, uses_ev)}"
            ]
        if kind == "and":
            expr = f"{sl('a')} & {sl('b')}"
            if min(w("a"), w("b")) > wo:
                expr = f"({expr}) & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]
        if kind in ("or", "xor"):
            op = "|" if kind == "or" else "^"
            expr = f"{sl('a')} {op} {sl('b')}"
            if max(w("a"), w("b")) > wo:
                expr = f"({expr}) & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]
        if kind == "not":
            flip = consts.mask(max(w("a"), wo), uses_ev)
            expr = f"{sl('a')} ^ {flip}"
            if w("a") > wo:
                expr = f"({expr}) & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]
        if kind == "eq":
            # Zero-detect per field: (t | TOP) - 1 clears the top bit
            # exactly when the field was zero (the borrow never crosses
            # fields — each holds at least TOP before the subtract).
            o, t = one(uses_ev), top(uses_ev)
            return [
                f"    _t = {sl('a')} ^ {sl('b')}",
                f"    s[{so}] = ((((_t | {t}) - {o}) >> {top_bit})"
                f" & {o}) ^ {o}",
            ]
        if kind == "lt":
            # a + TOP - b keeps the top bit iff a >= b (values occupy
            # at most stride-2 bits, so neither the sum nor the borrow
            # crosses a field boundary).
            o, t = one(uses_ev), top(uses_ev)
            return [
                f"    _t = ({sl('a')} | {t}) - {sl('b')}",
                f"    s[{so}] = ((_t >> {top_bit}) & {o}) ^ {o}",
            ]
        if kind == "mux":
            # Spread each lane's select bit into a full out-width mask:
            # (e << wo) - e is 2^wo - 1 where e is 1, 0 where it is 0.
            o = one(uses_ev)
            m = consts.mask(wo, uses_ev)
            return [
                f"    _e = {sl('sel')} & {o}",
                f"    _m = (_e << {wo}) - _e",
                f"    s[{so}] = ({sl('a')} & _m) | ({sl('b')} & (_m ^ {m}))",
            ]
        if kind == "shl":
            amount = int(cell.params["amount"])
            expr = f"({sl('a')} << {amount})"
            if w("a") + amount > wo:
                expr += f" & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]
        if kind == "shr":
            amount = int(cell.params["amount"])
            return [
                f"    s[{so}] = ({sl('a')} >> {amount})"
                f" & {consts.mask(wo, uses_ev)}"
            ]
        if kind == "slice":
            lsb = int(cell.params["lsb"])
            if lsb == 0 and w("a") <= wo:
                return [f"    s[{so}] = {sl('a')}"]
            return [
                f"    s[{so}] = ({sl('a')} >> {lsb})"
                f" & {consts.mask(wo, uses_ev)}"
            ]
        # concat (the only _SWAR_KINDS member left)
        expr = f"(({sl('a')} << {w('b')}) | {sl('b')})"
        if w("a") + w("b") > wo:
            expr += f" & {consts.mask(wo, uses_ev)}"
        return [f"    s[{so}] = {expr}"]

    def comb_lane(cell: Cell) -> List[str]:
        """Per-lane loop mirroring :func:`eval_comb_cell` exactly."""
        pins = cell.pins
        kind = cell.kind
        out = pins["out"]
        so = slot[out.name]
        wo = out.width
        omask = (1 << wo) - 1
        wide_out = wide(out)

        def wr(listcomp: str) -> str:
            if wide_out:
                return f"    s[{so}] = {listcomp}"
            helpers_needed[0] = True
            return f"    s[{so}] = _pack({listcomp})"

        if kind == "const":
            value = int(cell.params["value"]) & omask
            if wide_out:
                return [f"    s[{so}] = [{value}] * _LANES"]
            return [
                f"    s[{so}] = {consts.rep(value, f'V{so}', uses_ev)}"
            ]
        if kind == "mux":
            return [wr(
                f"[(_p if _c & 1 else _q) & {omask} for _c, _p, _q in "
                f"zip({rd_lanes(pins['sel'])}, {rd_lanes(pins['a'])},"
                f" {rd_lanes(pins['b'])})]"
            )]
        binary = {
            "add": f"(_p + _q) & {omask}",
            "sub": f"(_p - _q) & {omask}",
            "mul": f"(_p * _q) & {omask}",
            "div": f"(_p // _q if _q else 0) & {omask}",
            "mod": f"(_p % _q if _q else 0) & {omask}",
            "and": f"(_p & _q) & {omask}",
            "or": f"(_p | _q) & {omask}",
            "xor": f"(_p ^ _q) & {omask}",
            "eq": "1 if _p == _q else 0",
            "lt": "1 if _p < _q else 0",
        }
        if kind == "concat":
            binary["concat"] = (
                f"((_p << {pins['b'].width}) | _q) & {omask}"
            )
        if kind in binary:
            return [wr(
                f"[{binary[kind]} for _p, _q in "
                f"zip({rd_lanes(pins['a'])}, {rd_lanes(pins['b'])})]"
            )]
        if kind == "slice" and int(cell.params["lsb"]) == 0 \
                and pins["a"].width <= wo and wide(pins["a"]) == wide_out:
            return [f"    s[{so}] = s[{slot[pins['a'].name]}]"]
        unary = {
            "not": f"(~_p) & {omask}",
            "shl": lambda: f"(_p << {int(cell.params['amount'])}) & {omask}",
            "shr": lambda: f"(_p >> {int(cell.params['amount'])}) & {omask}",
            "slice": lambda: f"(_p >> {int(cell.params['lsb'])}) & {omask}",
        }
        if kind in unary:
            expr = unary[kind]
            expr = expr if isinstance(expr, str) else expr()
            return [wr(f"[{expr} for _p in {rd_lanes(pins['a'])}]")]
        raise NetlistError(f"cannot compile cell kind {kind!r}")

    reg_cells = sorted(
        name for name, c in module.cells.items() if c.kind in ("reg", "regen")
    )
    fifo_cells = sorted(
        name for name, c in module.cells.items() if c.kind == "fifo"
    )
    reg_index = {name: i for i, name in enumerate(reg_cells)}
    fifo_index = {name: i for i, name in enumerate(fifo_cells)}
    # Inits are pre-masked to the q width: the scalar engine masks at
    # the q drive instead, but out-of-width init bits are unobservable
    # either way, and clean fields are the packed invariant.
    reg_inits = [
        int(module.cells[name].params.get("init", 0))
        & ((1 << module.cells[name].pins["q"].width) - 1)
        for name in reg_cells
    ]
    fifo_depths = [
        int(module.cells[name].params.get("depth", 2)) for name in fifo_cells
    ]

    ev: List[str] = []
    for name in reg_cells:
        cell = module.cells[name]
        q, d = cell.pins["q"], cell.pins["d"]
        i = reg_index[name]
        qmask = (1 << q.width) - 1
        if wide(d) or wide(q):  # storage is a per-lane list
            if not wide(q):
                helpers_needed[0] = True
                ev.append(
                    f"    s[{slot[q.name]}] = "
                    f"_pack([_v & {qmask} for _v in r[{i}]])"
                )
            elif d.width > q.width:
                ev.append(
                    f"    s[{slot[q.name]}] = "
                    f"[_v & {qmask} for _v in r[{i}]]"
                )
            else:
                ev.append(f"    s[{slot[q.name]}] = r[{i}]")
        elif d.width <= q.width:
            # Latched values are clean at d's width already: the whole
            # K-lane drive is one reference copy.
            ev.append(f"    s[{slot[q.name]}] = r[{i}]")
        else:
            ev.append(
                f"    s[{slot[q.name]}] = r[{i}]"
                f" & {consts.mask(q.width, uses_ev)}"
            )
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        index = fifo_index[name]
        od = pins["out_data"]
        od_mask = (1 << od.width) - 1
        ev.append("    _ir = 0")
        ev.append("    _ov = 0")
        ev.append("    _od = []" if wide(od) else "    _od = 0")
        ev.append(f"    for _sh, _fq in zip(_SHIFTS, f[{index}]):")
        ev.append(f"        if len(_fq) < {fifo_depths[index]}:")
        ev.append("            _ir |= 1 << _sh")
        if wide(od):
            ev.append("        if _fq:")
            ev.append("            _ov |= 1 << _sh")
            ev.append(f"            _od.append(_fq[0] & {od_mask})")
            ev.append("        else:")
            ev.append("            _od.append(0)")
        else:
            ev.append("        if _fq:")
            ev.append("            _ov |= 1 << _sh")
            ev.append(f"            _od |= (_fq[0] & {od_mask}) << _sh")
        ev.append(f"    s[{slot[pins['in_ready'].name]}] = _ir")
        ev.append(f"    s[{slot[pins['out_valid'].name]}] = _ov")
        ev.append(f"    s[{slot[od.name]}] = _od")
    for cell in comb_topo_order(module):
        if _swar_eligible(cell, stride):
            ev.extend(comb_swar(cell))
        else:
            ev.extend(comb_lane(cell))
    if not ev:
        ev.append("    pass")

    lt: List[str] = []
    for name in reg_cells:
        cell = module.cells[name]
        d = cell.pins["d"]
        q = cell.pins["q"]
        i = reg_index[name]
        if wide(d) or wide(q):
            source_expr = rd_lanes(d)
            if cell.kind == "reg":
                lt.append(f"    r[{i}] = {source_expr}")
            else:  # regen, per-lane blend off the packed enable bits
                en = slot[cell.pins["en"].name]
                lt.append(f"    _eb = s[{en}]")
                lt.append(
                    f"    r[{i}] = [(_dv if (_eb >> _sh) & 1 else _rv)"
                    f" for _sh, _dv, _rv in"
                    f" zip(_SHIFTS, {source_expr}, r[{i}])]"
                )
        elif cell.kind == "reg":
            lt.append(f"    r[{i}] = s[{slot[d.name]}]")
        else:  # regen: blend every lane through its spread enable bit
            en = slot[cell.pins["en"].name]
            o = one(uses_lt)
            fl = full(uses_lt)
            lt.append(f"    _e = s[{en}] & {o}")
            lt.append(f"    _m = (_e << {top_bit}) - _e")
            lt.append(
                f"    r[{i}] = (s[{slot[d.name]}] & _m)"
                f" | (r[{i}] & (_m ^ {fl}))"
            )
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        in_data = pins["in_data"]
        id_mask = (1 << in_data.width) - 1
        lt.append(f"    _ot = s[{slot[pins['out_ready'].name]}]")
        lt.append(f"    _ov = s[{slot[pins['out_valid'].name]}]")
        lt.append(f"    _iv = s[{slot[pins['in_valid'].name]}]")
        lt.append(f"    _ir = s[{slot[pins['in_ready'].name]}]")
        if wide(in_data):
            lt.append(
                f"    for _sh, _fq, _dv in"
                f" zip(_SHIFTS, f[{fifo_index[name]}],"
                f" s[{slot[in_data.name]}]):"
            )
            lt.append("        if _fq and (_ot >> _sh) & (_ov >> _sh) & 1:")
            lt.append("            _fq.popleft()")
            lt.append("        if (_iv >> _sh) & (_ir >> _sh) & 1:")
            lt.append("            _fq.append(_dv)")
        else:
            lt.append(f"    _id = s[{slot[in_data.name]}]")
            lt.append(
                f"    for _sh, _fq in zip(_SHIFTS, f[{fifo_index[name]}]):"
            )
            lt.append("        if _fq and (_ot >> _sh) & (_ov >> _sh) & 1:")
            lt.append("            _fq.popleft()")
            lt.append("        if (_iv >> _sh) & (_ir >> _sh) & 1:")
            lt.append(f"            _fq.append((_id >> _sh) & {id_mask})")
    if not lt:
        lt.append("    pass")

    # -- assemble: prelude (constants, helpers), then the two defs ----
    prelude: List[str] = [
        f"_LANES = {lanes}",
        f"_STRIDE = {stride}",
        f"_SHIFTS = tuple(range(0, {lanes * stride}, {stride}))",
    ]
    for name, value in consts.defs:
        prelude.append(f"{name} = {hex(value)}")
    helper_names: List[str] = []
    if helpers_needed[0]:
        nb, sb = lanes * stride // 8, stride // 8
        prelude += [
            f"_NB = {nb}",
            f"_SB = {sb}",
            f"_OFFS = tuple(range(0, {nb}, {sb}))",
            "",
            "",
            "def _unpack(v, _NB=_NB, _SB=_SB, _OFFS=_OFFS):",
            '    _b = v.to_bytes(_NB, "little")',
            '    return [int.from_bytes(_b[_i:_i + _SB], "little")'
            " for _i in _OFFS]",
            "",
            "",
            "def _pack(vals, _SB=_SB):",
            '    return int.from_bytes(b"".join(_v.to_bytes(_SB, "little")'
            ' for _v in vals), "little")',
        ]
        helper_names = ["_unpack", "_pack"]

    def signature(uses: set) -> str:
        extras = sorted(uses) + helper_names
        defaults = "".join(f", {n}={n}" for n in extras)
        return f"(s, r, f{defaults}):"

    source = "\n".join(
        prelude
        + ["", "", f"def _evaluate{signature(uses_ev)}"]
        + ev
        + ["", "", f"def _latch{signature(uses_lt)}"]
        + lt
    ) + "\n"
    return source, reg_cells, reg_inits, fifo_cells, fifo_depths, stride


#: (structural hash, lanes, plan digest | None) → CompiledNetlist,
#: shared process-wide.  Keyed on the full structural identity plus the
#: lane count plus the profile-guided plan (None = plain program), so a
#: pass pipeline that rewrites a module (new hash), a different batch
#: width, or a different plan can never be served stale step code.
_MEMO: Dict[Tuple[str, Optional[int], Optional[str]], CompiledNetlist] = {}
_MEMO_LOCK = threading.Lock()

#: Required keys of a persisted codegen payload (see ``CodegenStore``).
_PAYLOAD_FIELDS = frozenset(
    (
        "structural_hash",
        "backend",
        "lanes",
        "stride",
        "source",
        "slot_of",
        "reg_cells",
        "reg_inits",
        "fifo_cells",
        "fifo_depths",
    )
)


def valid_codegen_payload(
    payload, structural_hash: str, lanes, backend: str
) -> bool:
    """Is ``payload`` a well-formed codegen entry for this exact key?

    The single validation authority for persisted codegen (all three
    generators route through it): the store applies it on load (so its
    hit/miss counters reflect *usable* entries) and the compile
    functions re-apply it as a cheap guard against arbitrary duck-typed
    stores.
    """
    return (
        isinstance(payload, dict)
        and _PAYLOAD_FIELDS <= set(payload)
        and payload["structural_hash"] == structural_hash
        and payload["lanes"] == lanes
        and payload["backend"] == backend
    )


def _codegen_backend_tag(lanes: Optional[int], plan=None) -> str:
    """This module's generators, as codegen-store backend tags.

    Profile-guided programs are tagged with the plan digest so two
    sessions that derived the same plan share one persisted entry while
    differing plans can never shadow each other (or the plain scalar
    program).
    """
    if plan is not None:
        return f"pgo-{plan.digest()}"
    return "scalar" if lanes is None else "swar"


def _generate_payload(
    module: Module, key: str, lanes: Optional[int], plan=None
) -> Dict:
    slot = {name: index for index, name in enumerate(sorted(module.nets))}
    extra_slots = 0
    inlined: List[str] = []
    if plan is not None:
        (source, reg_cells, reg_inits, fifo_cells, fifo_depths,
         extra_slots, inlined) = _generate_pgo_source(module, slot, plan)
        stride = 0
    elif lanes is None:
        (source, reg_cells, reg_inits,
         fifo_cells, fifo_depths) = _generate_source(module, slot)
        stride = 0
    else:
        (source, reg_cells, reg_inits, fifo_cells, fifo_depths,
         stride) = _generate_batched_source(module, slot, lanes)
    return {
        "structural_hash": key,
        "backend": _codegen_backend_tag(lanes, plan),
        "lanes": lanes,
        "stride": stride,
        "source": source,
        "slot_of": slot,
        "reg_cells": reg_cells,
        "reg_inits": reg_inits,
        "fifo_cells": fifo_cells,
        "fifo_depths": fifo_depths,
        "extra_slots": extra_slots,
        "inlined_nets": list(inlined),
    }


def _materialize(
    payload: Dict, module_name: str, start: float, from_store: bool
) -> CompiledNetlist:
    namespace: Dict[str, object] = {}
    code = compile(
        payload["source"],
        f"<compiled:{module_name}:{payload['structural_hash']}"
        f":x{payload['lanes']}>",
        "exec",
    )
    exec(code, namespace)
    return CompiledNetlist(
        payload["structural_hash"],
        payload["slot_of"],
        payload["reg_cells"],
        payload["reg_inits"],
        payload["fifo_cells"],
        payload["fifo_depths"],
        namespace["_evaluate"],
        namespace["_latch"],
        payload["source"],
        time.perf_counter() - start,
        lanes=payload["lanes"],
        stride=payload["stride"],
        from_store=from_store,
        extra_slots=payload.get("extra_slots", 0),
        inlined_nets=tuple(payload.get("inlined_nets", ())),
    )


def compile_netlist(
    module: Module, lanes: Optional[int] = None, store=None, plan=None
) -> CompiledNetlist:
    """Compile a flat module to specialized step code (memoized).

    The module must already be flat and valid — the simulator classes
    take care of flattening; direct callers flatten themselves.
    ``lanes=None`` (the default) selects the scalar generator; any
    integer ``lanes >= 1`` selects the packed multi-lane generator for
    exactly that many lanes (a one-lane packed program is distinct from
    the scalar one — it still uses the packed encoding).  ``store``
    (duck-typed: ``load(structural_hash, lanes, backend) -> payload |
    None`` and ``save(payload)``, see
    ``repro.driver.cache.CodegenStore``) lets a warm process reuse
    previously generated source instead of levelizing and generating
    again.

    ``plan`` (a :class:`~repro.rtl.passes.pgo.PgoPlan`) selects the
    profile-guided scalar generator; it is scalar-only (``lanes`` must
    be None) and must have been built for exactly this module — a
    mismatched structural hash is an error, never a silent fallback.
    """
    if lanes is not None:
        lanes = int(lanes)
        if lanes < 1:
            raise NetlistError(f"lanes must be >= 1, got {lanes}")
    structural = module.structural_hash()
    if plan is not None:
        if lanes is not None:
            raise NetlistError(
                "profile-guided codegen is scalar-only; lanes must be None"
            )
        if plan.structural_hash != structural:
            raise NetlistError(
                f"plan was built for {plan.structural_hash}, "
                f"module is {structural}"
            )
    backend = _codegen_backend_tag(lanes, plan)
    key = (structural, lanes, plan.digest() if plan is not None else None)
    with _MEMO_LOCK:
        cached = _MEMO.get(key)
    if cached is not None:
        return cached
    start = time.perf_counter()
    payload = None
    if store is not None:
        payload = store.load(structural, lanes, backend)
        if payload is not None and not valid_codegen_payload(
            payload, structural, lanes, backend
        ):
            payload = None
    loaded = payload is not None
    if payload is None:
        payload = _generate_payload(module, structural, lanes, plan)
    compiled = _materialize(payload, module.name, start, loaded)
    if store is not None and not loaded:
        store.save(payload)
    with _MEMO_LOCK:
        # A racing thread may have published first; either object is
        # valid (pure function of the structural key), keep the winner.
        return _MEMO.setdefault(key, compiled)


def clear_compile_memo() -> None:
    """Drop every memoized compilation (mainly for tests)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def compile_memo_size() -> int:
    with _MEMO_LOCK:
        return len(_MEMO)


class CompiledSimulator:
    """Drop-in :class:`SimBackend` running code-generated step functions.

    Bit-identical to :class:`~repro.rtl.simulate.Simulator` by
    construction (see :func:`differential_check`); several times faster
    because the per-cycle work is straight-line list indexing instead of
    per-cell dispatch over ``Net``-keyed dicts.
    """

    def __init__(self, module: Module, codegen_store=None, plan=None):
        self.module = _flattened(module)
        self._codegen_store = codegen_store
        self.program = compile_netlist(
            self.module, store=codegen_store, plan=plan
        )
        # Profile-guided programs keep bookkeeping (previous root
        # values) in extra slots past the net slots, None-initialized
        # so their first evaluation can never skip anything.
        self._slots: List[object] = (
            [0] * self.program.n_slots + [None] * self.program.extra_slots
        )
        self._inlined = frozenset(self.program.inlined_nets)
        self._regs: List[int] = list(self.program.reg_inits)
        self._fifos: List[deque] = [deque() for _ in self.program.fifo_depths]
        self._evaluate = self.program.evaluate
        self._latch = self.program.latch
        slot_of = self.program.slot_of
        self._input_slots = {
            name: (slot_of[net.name], _mask_literal(net.width))
            for name, net in self.module.inputs()
        }
        self._output_slots = [
            (name, slot_of[net.name]) for name, net in self.module.outputs()
        ]
        self.cycle = 0

    # ------------------------------------------------------------------

    def poke(self, inputs: Dict[str, int]) -> None:
        slots = self._slots
        input_slots = self._input_slots
        for name, value in inputs.items():
            entry = input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            index, mask = entry
            slots[index] = int(value) & mask

    def evaluate(self) -> None:
        self._evaluate(self._slots, self._regs, self._fifos)

    def peek(self, name: str) -> int:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self._slots[self.program.slot_of[net.name]]

    def peek_net(self, net_name: str) -> int:
        index = self.program.slot_of.get(net_name)
        if index is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        if net_name in self._inlined:
            raise NetlistError(
                f"{self.module.name}: net {net_name!r} was fused into its "
                f"consumer by profile-guided codegen and holds no value"
            )
        return self._slots[index]

    def snapshot(self, names=None) -> Dict[str, int]:
        """Current value of every named net (profile-collection hook)."""
        slot_of = self.program.slot_of
        slots = self._slots
        if names is None:
            names = slot_of
        return {name: slots[slot_of[name]] for name in names}

    def tick(self) -> None:
        self._latch(self._slots, self._regs, self._fifos)
        self.cycle += 1

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        if inputs:
            self.poke(inputs)
        slots = self._slots
        self._evaluate(slots, self._regs, self._fifos)
        outputs = {name: slots[index] for name, index in self._output_slots}
        self._latch(slots, self._regs, self._fifos)
        self.cycle += 1
        return outputs

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]:
        step = self.step
        return [step(inputs) for inputs in input_stream]

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[Dict[str, int]]:
        return self.run(random_stimulus(self.module, cycles, seed, bias))

    def run_batch(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """One trace per stream, each lane from reset.

        Lane-packs the streams through one SWAR step function when
        :func:`swar_profitable` predicts a win; otherwise runs the
        streams sequentially on fresh scalar simulators — same traces
        (both paths are differential-gated), strictly faster on designs
        like ``blas`` where packing measured slower than scalar.
        """
        if not input_streams:
            return []  # mirror the interpreter's empty-batch behavior
        if swar_profitable(self.module, len(input_streams)):
            batched = BatchedCompiledSimulator(
                self.module,
                len(input_streams),
                codegen_store=self._codegen_store,
            )
            return batched.run(input_streams)
        return [
            CompiledSimulator(
                self.module, codegen_store=self._codegen_store
            ).run(stream)
            for stream in input_streams
        ]

    def run_random_batch(
        self, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        return self.run_batch(
            random_stimulus_batch(self.module, cycles, lanes, seed, bias)
        )


class BatchedCompiledSimulator:
    """K independent stimulus lanes behind one packed step function.

    Lane ``k`` of every net lives at bit offset ``k * stride`` of the
    net's slot integer; the code-generated evaluate/latch advance all
    lanes per call (see the module docstring for the SWAR encoding).
    Lanes never interact — outputs are bit-identical to ``lanes``
    separate single-lane runs by construction, and the batched
    differential gates assert it.

    The scalar-facing surface is vectorized: ``poke`` takes ``{port:
    [v0..vK-1]}``, ``peek``/``peek_net`` return per-lane lists, and
    ``step``/``run`` exchange one input/output dict per lane.
    """

    def __init__(self, module: Module, lanes: int, codegen_store=None):
        self.module = _flattened(module)
        self.lanes = int(lanes)
        if self.lanes < 1:
            raise NetlistError(f"lanes must be >= 1, got {lanes!r}")
        self.program = compile_netlist(
            self.module, lanes=self.lanes, store=codegen_store
        )
        stride = self.program.stride
        self._shifts = tuple(range(0, self.lanes * stride, stride))
        slot_of = self.program.slot_of
        # Nets wider than a lane field live as per-lane lists; packed
        # nets as one integer (see _generate_batched_source).
        self._wide_slots = frozenset(
            slot_of[net.name]
            for net in self.module.nets.values()
            if net.width > stride - 2
        )
        self._slots: List[object] = [
            [0] * self.lanes if index in self._wide_slots else 0
            for index in range(self.program.n_slots)
        ]
        # Replicate each (pre-masked) register init into every lane.
        unit = _lane_unit(self.lanes, stride)
        self._regs: List[object] = []
        for name, init in zip(self.program.reg_cells, self.program.reg_inits):
            pins = self.module.cells[name].pins
            if max(pins["d"].width, pins["q"].width) > stride - 2:
                self._regs.append([init] * self.lanes)
            else:
                self._regs.append(init * unit)
        self._fifos: List[List[deque]] = [
            [deque() for _ in range(self.lanes)]
            for _ in self.program.fifo_depths
        ]
        self._evaluate = self.program.evaluate
        self._latch = self.program.latch
        self._input_slots = {
            name: (slot_of[net.name], _mask_literal(net.width))
            for name, net in self.module.inputs()
        }
        self._output_slots = [
            (
                name,
                slot_of[net.name],
                _mask_literal(net.width),
                slot_of[net.name] in self._wide_slots,
            )
            for name, net in self.module.outputs()
        ]
        self.cycle = 0

    # ------------------------------------------------------------------

    def poke(self, inputs: Dict[str, Sequence[int]]) -> None:
        """Drive ports with per-lane value lists (one value per lane)."""
        slots = self._slots
        shifts = self._shifts
        for name, values in inputs.items():
            entry = self._input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            if len(values) != self.lanes:
                raise NetlistError(
                    f"{self.module.name}: port {name!r} got {len(values)} "
                    f"values for {self.lanes} lanes"
                )
            index, mask = entry
            if index in self._wide_slots:
                slots[index] = [int(value) & mask for value in values]
                continue
            packed = 0
            for shift, value in zip(shifts, values):
                packed |= (int(value) & mask) << shift
            slots[index] = packed

    def _poke_vectors(self, vectors: Sequence[Dict[str, int]]) -> None:
        """Per-lane input dicts (lane k's ports in ``vectors[k]``).

        Lanes may drive different port subsets (exactly like K separate
        scalar ``step`` calls): a port a lane omits keeps that lane's
        previous value.  Stimulus streams drive every port every cycle,
        so the uniform case stays on the overwrite-the-slot fast path.
        """
        if len(vectors) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: got {len(vectors)} input vectors "
                f"for {self.lanes} lanes"
            )
        slots = self._slots
        shifts = self._shifts
        first = vectors[0]
        uniform = all(vector.keys() == first.keys() for vector in vectors)
        if uniform:
            for name in first:
                entry = self._input_slots.get(name)
                if entry is None:
                    raise NetlistError(
                        f"{self.module.name}: no input port {name!r}"
                    )
                index, mask = entry
                if index in self._wide_slots:
                    slots[index] = [
                        int(vector[name]) & mask for vector in vectors
                    ]
                    continue
                packed = 0
                for shift, vector in zip(shifts, vectors):
                    packed |= (int(vector[name]) & mask) << shift
                slots[index] = packed
            return
        names = set(first)
        for vector in vectors[1:]:
            names.update(vector)
        for name in names:
            entry = self._input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            index, mask = entry
            if index in self._wide_slots:
                slots[index] = [
                    (int(vector[name]) & mask) if name in vector else old
                    for vector, old in zip(vectors, slots[index])
                ]
                continue
            packed = slots[index]
            for shift, vector in zip(shifts, vectors):
                if name in vector:
                    packed = (packed & ~(mask << shift)) | (
                        (int(vector[name]) & mask) << shift
                    )
            slots[index] = packed

    def evaluate(self) -> None:
        self._evaluate(self._slots, self._regs, self._fifos)

    def peek(self, name: str) -> List[int]:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self._unpack_slot(self.program.slot_of[net.name], net.width)

    def peek_net(self, net_name: str) -> List[int]:
        index = self.program.slot_of.get(net_name)
        if index is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        return self._unpack_slot(
            index, self.module.nets[net_name].width
        )

    def _unpack_slot(self, index: int, width: int) -> List[int]:
        value = self._slots[index]
        if index in self._wide_slots:
            return list(value)
        mask = _mask_literal(width)
        return [(value >> shift) & mask for shift in self._shifts]

    def snapshot(self, names=None) -> Dict[str, Tuple[int, ...]]:
        """Per-lane value tuples of the named nets (profile hook)."""
        slot_of = self.program.slot_of
        nets = self.module.nets
        if names is None:
            names = slot_of
        return {
            name: tuple(self._unpack_slot(slot_of[name], nets[name].width))
            for name in names
        }

    def tick(self) -> None:
        self._latch(self._slots, self._regs, self._fifos)
        self.cycle += 1

    def step(
        self, vectors: Optional[Sequence[Dict[str, int]]] = None
    ) -> List[Dict[str, int]]:
        """One cycle for every lane; returns one output dict per lane."""
        if vectors:
            self._poke_vectors(vectors)
        slots = self._slots
        self._evaluate(slots, self._regs, self._fifos)
        outputs = [
            {
                name: (
                    slots[index][lane]
                    if is_wide
                    else (slots[index] >> shift) & mask
                )
                for name, index, mask, is_wide in self._output_slots
            }
            for lane, shift in enumerate(self._shifts)
        ]
        self._latch(slots, self._regs, self._fifos)
        self.cycle += 1
        return outputs

    def run(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Feed K equal-length streams; returns K per-lane traces."""
        streams = [list(stream) for stream in input_streams]
        if len(streams) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: got {len(streams)} streams for "
                f"{self.lanes} lanes"
            )
        lengths = {len(stream) for stream in streams}
        if len(lengths) > 1:
            raise NetlistError(
                f"{self.module.name}: lane streams differ in length: "
                f"{sorted(lengths)}"
            )
        traces: List[List[Dict[str, int]]] = [[] for _ in streams]
        step = self.step
        for vectors in zip(*streams):
            for trace, outputs in zip(traces, step(vectors)):
                trace.append(outputs)
        return traces

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        """Seeded per-lane stimulus (lane seeds via derive_lane_seed)."""
        return self.run(
            random_stimulus_batch(self.module, cycles, self.lanes, seed, bias)
        )

    def run_batch(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Alias for :meth:`run`, matching the scalar backends' batch
        surface so callers can hold either kind of engine uniformly."""
        return self.run(input_streams)

    def run_random_batch(
        self, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        if int(lanes) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: simulator compiled for {self.lanes} "
                f"lanes, asked to run {lanes}"
            )
        return self.run_random(cycles, seed, bias)


#: backend name → engine class; the vocabulary ``CompileSession`` and
#: the CLI's ``--sim-backend`` validate against.  ``"vector"`` is
#: registered by :mod:`repro.rtl.vectorize` on import (the package
#: ``__init__`` guarantees that import), keeping this module free of a
#: circular dependency.
SIM_BACKENDS = {
    "interp": Simulator,
    "compiled": CompiledSimulator,
    "batched": BatchedCompiledSimulator,
}

#: backend name → semantic version, mirroring ``Pass.version``: bump a
#: backend's entry whenever its simulation semantics change, so that
#: persistent simulate artifacts produced by the old code are cache
#: misses instead of silently masking the fix (the differential gates
#: compare *computed* traces, not stale ones).  ``"auto"`` versions the
#: tuner-driven *selection* policy, not an engine of its own.
SIM_BACKEND_VERSIONS = {
    "interp": 1,
    "compiled": 1,
    "batched": 1,
    "auto": 1,
}


#: The simulation-backend degradation ladder: when an engine cannot be
#: instantiated (its runtime support is missing, or a fault-injection
#: run knocked it out), the session falls back one rung at a time until
#: it reaches the dependency-free interpreter.  Every rung is
#: bit-identical by the differential contract, so degrading costs
#: throughput, never correctness.
BACKEND_FALLBACKS = {
    "vector": "compiled",
    "batched": "compiled",
    "compiled": "interp",
}


def backend_fingerprint(name: str) -> str:
    """``name@version`` — the backend's contribution to cache keys.

    Accepts every name with versioned semantics, including ``"auto"``
    (a selection policy rather than an engine), unlike
    :func:`resolve_backend` which only accepts concrete engines.
    """
    try:
        version = SIM_BACKEND_VERSIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown sim backend {name!r}; "
            f"available: {backend_choices()}"
        ) from None
    return f"{name}@{version}"


def backend_choices() -> List[str]:
    """Every ``--sim-backend`` spelling: concrete engines + ``auto``."""
    return sorted(SIM_BACKENDS) + ["auto"]


def resolve_backend(name: str):
    """Backend name → engine class, with a helpful rejection.

    Concrete engines only — ``"auto"`` must be resolved to one first
    (see :func:`repro.rtl.tuner.tune`).
    """
    try:
        return SIM_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown sim backend {name!r}; available: {sorted(SIM_BACKENDS)}"
        ) from None


def make_simulator(
    module: Module,
    backend: str = "interp",
    *,
    lanes: int = 1,
    codegen_store=None,
    plan=None,
):
    """Instantiate the named engine over ``module``.

    ``codegen_store`` (a persistent source store, see
    ``repro.driver.cache.CodegenStore``) only matters to the codegen
    backends; the interpreter ignores it.  ``lanes > 1`` on the
    ``compiled`` backend returns a :class:`BatchedCompiledSimulator`
    *when* :func:`swar_profitable` predicts a win, else the scalar
    engine whose ``run_batch`` runs lanes sequentially (same traces,
    faster on SWAR-hostile designs).  ``batched`` forces the SWAR
    engine regardless; lane engines registered by other modules
    (``vector``) take ``(module, lanes, codegen_store=...)``.  The
    interpreter has no lane parallelism, so there it returns the plain
    engine whose ``run_batch`` loops.

    ``plan`` (a :class:`~repro.rtl.passes.pgo.PgoPlan`, from an ``-O3``
    optimize artifact) turns on profile-guided execution where an
    engine supports it: the interpreter gates cold cones, the scalar
    compiled engine runs the specialized program.  Lane engines ignore
    the plan — PGO codegen is scalar, and the plan is purely an
    optimization hint (every engine's values are bit-identical with or
    without it).
    """
    cls = resolve_backend(backend)
    lanes = max(1, int(lanes))
    if cls is CompiledSimulator:
        if lanes > 1 and swar_profitable(module, lanes):
            return BatchedCompiledSimulator(
                module, lanes, codegen_store=codegen_store
            )
        return cls(module, codegen_store=codegen_store, plan=plan)
    if cls is Simulator:
        return cls(module, plan=plan)
    return cls(module, lanes, codegen_store=codegen_store)


def differential_check(
    module: Module,
    cycles: int = 128,
    seed: int = 0,
    bias: float = 0.0,
    lanes: int = 1,
    backend: str = "compiled",
    plan=None,
) -> bool:
    """True iff both backends agree bit-for-bit under shared stimulus.

    The correctness gate for every codegen backend: identical seeded
    input vectors drive a fresh interpreter and a fresh engine of the
    named backend; every output must match on every cycle.  With
    ``lanes > 1`` (or a lane engine) the interpreter runs the K
    derived-seed streams sequentially while the engine under test
    advances them together, and all K traces must agree — which
    simultaneously proves the engine's outputs bit-identical to K
    independent single-lane runs.  ``backend`` may be ``"compiled"``
    (scalar at ``lanes == 1``, SWAR above), ``"batched"`` (SWAR even at
    one lane) or ``"vector"``.

    ``plan`` gates the profile-guided engines instead: the reference is
    always a plan-less interpreter, the engine under test runs with the
    plan — ``backend="compiled"`` checks the specialized scalar
    program, and ``backend="interp"`` (only legal with a plan) checks
    the gated interpreter.  Plans are scalar-only: ``lanes`` must be 1.
    """
    if backend == "interp" and plan is None:
        raise NetlistError(
            "differential_check compares a codegen backend against the "
            "interpreter; backend='interp' would compare it to itself"
        )
    interp = Simulator(module)
    if plan is not None:
        if lanes != 1:
            raise NetlistError(
                "profile-guided execution is scalar-only; lanes must be 1"
            )
        if backend == "interp":
            engine = Simulator(interp.module, plan=plan)
        elif backend == "compiled":
            engine = CompiledSimulator(interp.module, plan=plan)
        else:
            raise NetlistError(
                f"backend {backend!r} does not take a profile-guided plan"
            )
        stimulus = random_stimulus(interp.module, cycles, seed, bias)
        return interp.run(stimulus) == engine.run(stimulus)
    if lanes == 1 and backend == "compiled":
        compiled = CompiledSimulator(interp.module)
        stimulus = random_stimulus(interp.module, cycles, seed, bias)
        return interp.run(stimulus) == compiled.run(stimulus)
    # Build the lane engine directly: only the lane-parallel program is
    # compiled, never a scalar one this check wouldn't run.
    if backend in ("compiled", "batched"):
        engine = BatchedCompiledSimulator(interp.module, lanes)
    else:
        engine = resolve_backend(backend)(interp.module, lanes)
    streams = random_stimulus_batch(interp.module, cycles, lanes, seed, bias)
    return interp.run_batch(streams) == engine.run(streams)

"""Structural Verilog emission for RTL netlists.

The paper's compiler produces Verilog; we emit equivalent structural text
so designs can be inspected (and, outside this sandbox, synthesized).  The
emitter works on flattened modules.
"""

from __future__ import annotations

from typing import List

from .netlist import Cell, Module, flatten


def _vname(name: str) -> str:
    out = []
    for char in name:
        if char.isalnum() or char == "_":
            out.append(char)
        else:
            out.append("_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "n" + text
    return text


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def emit_verilog(module: Module) -> str:
    """Emit synthesizable structural Verilog for a module."""
    flat = flatten(module)
    lines: List[str] = []
    port_decls = ["input wire clk"]
    for name, net in flat.inputs():
        port_decls.append(f"input wire {_range(net.width)}{_vname(name)}")
    for name, net in flat.outputs():
        port_decls.append(f"output wire {_range(net.width)}{_vname(name)}")
    lines.append(f"module {_vname(flat.name)} (")
    lines.append("  " + ",\n  ".join(port_decls))
    lines.append(");")
    port_nets = set(flat.ports.values())
    for net in flat.nets.values():
        if net in port_nets:
            continue
        lines.append(f"  wire {_range(net.width)}{_vname(net.name)};")
    regs: List[str] = []
    for cell in flat.cells.values():
        lines.extend(_emit_cell(cell, regs))
    if regs:
        lines.append("  always @(posedge clk) begin")
        lines.extend(f"    {stmt}" for stmt in regs)
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _emit_cell(cell: Cell, regs: List[str]) -> List[str]:
    pins = {pin: _vname(net.name) for pin, net in cell.pins.items()}
    kind = cell.kind
    if kind == "const":
        width = cell.pins["out"].width
        return [f"  assign {pins['out']} = {width}'d{cell.params['value'] & ((1 << width) - 1)};"]
    binops = {
        "add": "+",
        "sub": "-",
        "mul": "*",
        "div": "/",
        "mod": "%",
        "and": "&",
        "or": "|",
        "xor": "^",
        "eq": "==",
        "lt": "<",
    }
    if kind in binops:
        return [
            f"  assign {pins['out']} = {pins['a']} {binops[kind]} {pins['b']};"
        ]
    if kind == "not":
        return [f"  assign {pins['out']} = ~{pins['a']};"]
    if kind == "shl":
        return [f"  assign {pins['out']} = {pins['a']} << {cell.params['amount']};"]
    if kind == "shr":
        return [f"  assign {pins['out']} = {pins['a']} >> {cell.params['amount']};"]
    if kind == "mux":
        return [
            f"  assign {pins['out']} = {pins['sel']} ? {pins['a']} : {pins['b']};"
        ]
    if kind == "slice":
        lsb = int(cell.params["lsb"])
        msb = lsb + cell.pins["out"].width - 1
        return [f"  assign {pins['out']} = {pins['a']}[{msb}:{lsb}];"]
    if kind == "concat":
        return [f"  assign {pins['out']} = {{{pins['a']}, {pins['b']}}};"]
    if kind == "reg":
        # Declared as wire; model the register in the always block via a
        # shadow reg and continuous assignment.
        shadow = f"{pins['q']}_r"
        regs.append(f"{shadow} <= {pins['d']};")
        return [
            f"  reg {_range(cell.pins['q'].width)}{shadow};",
            f"  assign {pins['q']} = {shadow};",
        ]
    if kind == "regen":
        shadow = f"{pins['q']}_r"
        regs.append(f"if ({pins['en']}) {shadow} <= {pins['d']};")
        return [
            f"  reg {_range(cell.pins['q'].width)}{shadow};",
            f"  assign {pins['q']} = {shadow};",
        ]
    if kind == "fifo":
        depth = int(cell.params.get("depth", 2))
        width = cell.pins["in_data"].width
        name = _vname(cell.name)
        return [
            f"  // FIFO {name}: depth {depth}, width {width}",
            f"  lilac_fifo #(.DEPTH({depth}), .WIDTH({width})) {name} (",
            f"    .clk(clk), .in_data({pins['in_data']}), .in_valid({pins['in_valid']}),",
            f"    .in_ready({pins['in_ready']}), .out_data({pins['out_data']}),",
            f"    .out_valid({pins['out_valid']}), .out_ready({pins['out_ready']}));",
        ]
    raise ValueError(f"cannot emit cell kind {kind!r}")

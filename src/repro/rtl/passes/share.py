"""Common-cell sharing: dedupe structurally identical cells.

The lowerer freely duplicates structure — every ``onehot_mux`` call
mints its own zero constant, every child's go pin rebuilds the same OR
tree over shared pulses, every delay buffer grows its own phase chain.
Two cells computing the same function of the same nets are
interchangeable, so all consumers are rewired onto one representative
and the duplicates are dropped.

Sharing runs to a fixpoint because each round exposes the next: merging
the first registers of two parallel delay chains gives their second
registers identical inputs, which merges them, and so on down the chain
— this is what coalesces the repeated pulse logic from ``_Lowerer``.

Sequential sharing is sound for ``reg``/``regen`` (identical input,
enable and init value imply identical state trajectories); ``fifo`` and
``submodule`` cells are never shared.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..netlist import COMBINATIONAL_KINDS, Module
from .base import Pass

#: Cell kinds that are safe to dedupe structurally.
SHAREABLE_KINDS = frozenset(COMBINATIONAL_KINDS | {"reg", "regen"})


def share_cells(module: Module, kinds: Set[str]) -> int:
    """Merge duplicate cells of the given kinds; returns merge count.

    A port-driving duplicate is kept as the representative (its net must
    retain a driver); when two duplicates both drive output ports they
    are left alone — each port needs its own driver.
    """
    port_nets = set(module.ports.values())
    merged_total = 0
    while True:
        merged = 0
        seen: Dict[Tuple, object] = {}
        for cell in list(module.cells.values()):
            if cell.kind not in kinds:
                continue
            outs = cell.output_pins()
            if len(outs) != 1:
                continue
            out_pin = outs[0]
            signature = (
                cell.kind,
                tuple(sorted((k, repr(v)) for k, v in cell.params.items())),
                tuple(
                    sorted((pin, id(cell.pins[pin])) for pin in cell.input_pins())
                ),
                cell.pins[out_pin].width,
            )
            rep = seen.get(signature)
            if rep is None:
                seen[signature] = cell
                continue
            rep_out = rep.pins[out_pin]
            cell_out = cell.pins[out_pin]
            if cell_out in port_nets:
                if rep_out in port_nets:
                    continue
                seen[signature] = cell
                rep, cell = cell, rep
                rep_out, cell_out = cell_out, rep_out
            module.replace_net_uses(cell_out, rep_out)
            module.remove_cell(cell.name)
            merged += 1
        merged_total += merged
        if not merged:
            break
    module.prune_nets()
    return merged_total


class CommonCellSharing(Pass):
    name = "common-cell-sharing"
    version = 1

    def run(self, module: Module) -> None:
        share_cells(module, SHAREABLE_KINDS)

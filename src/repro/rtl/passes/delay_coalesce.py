"""Delay-buffer coalescing: canonicalize zero-cost buffers and delays.

Lowering is littered with width-preserving ``slice``-at-0 cells — the
``_buffer`` idiom drives every module output and every delay buffer's
read port through one — and with parallel register chains that differ
only in the buffers between their stages.  This pass:

* **forwards aliases** — a width-preserving ``slice`` at lsb 0 is a
  wire; consumers are rewired to read the source directly;
* **sinks output buffers** — when such an alias drives an output port,
  the alias's *driver* is retargeted onto the port net instead, deleting
  the buffer cell (the port keeps a driver throughout);
* **coalesces delay chains** — registers with identical input, enable
  and init are merged level by level (shared with
  :func:`~repro.rtl.passes.share.share_cells`), so parallel delay
  chains from one source collapse into a single tapped chain.

The three steps iterate to a fixpoint: alias forwarding is what makes
neighbouring chain stages structurally identical in the first place.
"""

from __future__ import annotations

from ..netlist import Cell, Module
from .base import Pass
from .share import share_cells


def _is_alias(cell: Cell) -> bool:
    if cell.kind != "slice" or int(cell.params.get("lsb", 0)) != 0:
        return False
    return cell.pins["out"].width == cell.pins["a"].width


class DelayCoalesce(Pass):
    name = "delay-coalesce"
    version = 1

    def run(self, module: Module) -> None:
        while True:
            changed = self._forward_aliases(module)
            changed += self._sink_output_buffers(module)
            changed += share_cells(module, {"reg", "regen"})
            if not changed:
                break
        module.prune_nets()

    @staticmethod
    def _forward_aliases(module: Module) -> int:
        port_nets = set(module.ports.values())
        forwarded = 0
        for cell in list(module.cells.values()):
            if not _is_alias(cell):
                continue
            src, out = cell.pins["a"], cell.pins["out"]
            if out in port_nets or src is out:
                continue
            module.remove_cell(cell.name)
            module.replace_net_uses(out, src)
            forwarded += 1
        return forwarded

    @staticmethod
    def _sink_output_buffers(module: Module) -> int:
        output_nets = {net for _, net in module.outputs()}
        port_nets = set(module.ports.values())
        drivers = module.drivers()
        sunk = 0
        for cell in list(module.cells.values()):
            if not _is_alias(cell):
                continue
            src, out = cell.pins["a"], cell.pins["out"]
            if out not in output_nets or src in port_nets:
                continue
            entry = drivers.get(src)
            if entry is None:
                continue
            driver, pin = entry
            driver.pins[pin] = out
            drivers[out] = entry
            del drivers[src]
            module.remove_cell(cell.name)
            module.replace_net_uses(src, out)
            sunk += 1
        return sunk

"""Profile-guided optimization passes (the ``-O3`` additions).

These passes close the loop from :mod:`repro.rtl.profile`: a
:class:`~repro.rtl.profile.SimProfile` of observed per-net activity is
distilled into a :class:`PgoPlan` — plain picklable data the execution
engines act on:

* :class:`DeadToggleGating` nominates *cold roots* (sequential outputs
  and ports that toggled rarely in the window) so the interpreter and
  the code generators can skip re-evaluating combinational cones whose
  support didn't change this cycle;
* :class:`HotConeSpecialization` nominates *observed-constant roots*
  with their observed values, letting codegen emit a constant-folded
  fast path guarded by a per-cycle runtime check of exactly those
  observations — the guard is what makes a wrong profile harmless;
* :class:`ProfileOrderedLevelization` ranks nets by toggle count (hot
  cones get scheduled first/contiguously in generated step functions)
  and marks single-reader nets whose defining expressions may be fused
  into their sole consumer.

Unlike the ``-O2`` passes these do **not** rewrite the netlist: the
module that simulates, emits Verilog and synthesizes is byte-for-byte
the ``-O2`` module, so every downstream structural artifact stays
shared.  The passes are *analyses* composed into the ``-O3``
:class:`~repro.rtl.passes.base.PassManager` pipeline so that their
``name@version+profile-digest`` fingerprints flow into artifact cache
keys like any other pass — a new profile or a semantics bump
invalidates exactly the plans (and specialized code) that depended on
it.  The finished plan travels on the optimize artifact
(``OptimizedNetlist.pgo_plan``) to the simulators.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from ..netlist import Module
from .base import Pass, comb_topo_order

#: Version of the plan's shape *and* of what the engines do with it.
#: Folded into -O3 cache keys (pipeline fingerprints and the codegen
#: backend tag) — bump whenever plan semantics change.
PGO_VERSION = 1

#: A root is *cold* when it changed value on at most this fraction of
#: sampled transitions.  Gating stays sound at any threshold (the
#: engines re-check for changes every cycle); the threshold only trades
#: bookkeeping overhead against skip opportunities.
COLD_TOGGLE_RATE = 0.3

#: Cap on the operator count of a fused expression tree.  Fusion
#: substitutes a single-reader net's defining expression into its sole
#: consumer; unbounded substitution grows pathological source lines.
FUSE_OP_CAP = 8

_SEQ_KINDS = ("reg", "regen", "fifo")


def fuse_op_cap() -> int:
    """``$REPRO_PGO_FUSE_CAP`` or the default operator-count cap."""
    return max(1, int(os.environ.get("REPRO_PGO_FUSE_CAP", FUSE_OP_CAP)))


class PgoPlan:
    """What the execution engines should do differently for one design.

    Plain data, picklable, content-addressed by :meth:`digest` — the
    digest feeds codegen memo keys and the persisted-codegen backend
    tag, so two sessions that derived the same plan (same module, same
    profile, same PGO_VERSION) share generated code on disk.
    """

    __slots__ = (
        "structural_hash",
        "profile_digest",
        "const_roots",
        "cold_roots",
        "fuse_nets",
        "hot_rank",
        "_digest",
    )

    def __init__(
        self,
        structural_hash: str,
        profile_digest: str,
        const_roots: Dict[str, int],
        cold_roots: Tuple[str, ...],
        fuse_nets: Tuple[str, ...],
        hot_rank: Dict[str, int],
    ):
        self.structural_hash = structural_hash
        self.profile_digest = profile_digest
        #: root net name -> the single value observed over the whole
        #: profile window.  Codegen's guarded fast path asserts these.
        self.const_roots = dict(const_roots)
        #: root net names whose cones are gating candidates.
        self.cold_roots = tuple(sorted(cold_roots))
        #: single-reader comb net names whose defining expression may be
        #: inlined into the sole consumer.
        self.fuse_nets = tuple(sorted(fuse_nets))
        #: comb out-net name -> observed toggle count (hot-first order).
        self.hot_rank = dict(hot_rank)
        self._digest: Optional[str] = None

    def digest(self) -> str:
        if self._digest is None:
            canonical = json.dumps(
                {
                    "version": PGO_VERSION,
                    "structural_hash": self.structural_hash,
                    "profile_digest": self.profile_digest,
                    "const_roots": self.const_roots,
                    "cold_roots": list(self.cold_roots),
                    "fuse_nets": list(self.fuse_nets),
                    "hot_rank": self.hot_rank,
                },
                sort_keys=True,
            )
            self._digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        return self._digest

    def describe(self) -> Dict[str, object]:
        """Summary counters (for ``--stats`` and reports)."""
        return {
            "digest": self.digest(),
            "profile_digest": self.profile_digest,
            "const_roots": len(self.const_roots),
            "cold_roots": len(self.cold_roots),
            "fuse_nets": len(self.fuse_nets),
        }

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self):
        return (
            f"PgoPlan({self.structural_hash[:12]}, "
            f"{len(self.const_roots)} const / {len(self.cold_roots)} cold "
            f"roots, {len(self.fuse_nets)} fused nets)"
        )


class PgoPlanBuilder:
    """Accumulates the plan across the three analysis passes.

    Each pass contributes its piece during the pipeline run;
    :meth:`finish` (called by the last pass) freezes the
    :class:`PgoPlan`.  The builder is shared by the pass instances one
    ``pgo_passes`` call creates — the session reads ``builder.plan``
    after running the pipeline.
    """

    def __init__(self, profile):
        self.profile = profile
        self.const_roots: Dict[str, int] = {}
        self.cold_roots: List[str] = []
        self.fuse_nets: List[str] = []
        self.hot_rank: Dict[str, int] = {}
        self.plan: Optional[PgoPlan] = None

    def roots(self, module: Module) -> List[str]:
        from ..profile import root_nets  # local: avoid import cycle

        return root_nets(module)

    def finish(self, module: Module) -> PgoPlan:
        self.plan = PgoPlan(
            module.structural_hash(),
            self.profile.digest(),
            self.const_roots,
            tuple(self.cold_roots),
            tuple(self.fuse_nets),
            self.hot_rank,
        )
        return self.plan


class _PgoPass(Pass):
    """Shared shape of the three analyses: profiled, netlist-read-only.

    The profile digest is folded into the fingerprint so the pipeline
    fingerprint — and with it every cache key derived from it — is
    specific to the observations the plan came from.
    """

    def __init__(self, builder: PgoPlanBuilder):
        self.builder = builder

    def fingerprint(self) -> str:
        return f"{self.name}@{self.version}+{self.builder.profile.digest()}"


class DeadToggleGating(_PgoPass):
    """Nominate cold roots whose cones the engines may gate.

    A root qualifies when its observed toggle rate is at most
    :data:`COLD_TOGGLE_RATE` (observed constants are the rate-0 case).
    Purely advisory: at runtime a gated cone still re-fires whenever
    any of its support roots actually changed, so a root that turns hot
    after the profile window costs a compare, never correctness.
    """

    name = "dead-toggle-gating"
    version = 1

    def run(self, module: Module) -> None:
        profile = self.builder.profile
        cold = [
            name
            for name in self.builder.roots(module)
            if profile.toggle_rate(name) <= COLD_TOGGLE_RATE
        ]
        self.builder.cold_roots = cold


class HotConeSpecialization(_PgoPass):
    """Nominate observed-constant roots for guarded specialization.

    Only *roots* (ports, sequential outputs) are recorded — every
    derived combinational constant is recovered by constant propagation
    from these under the runtime guard, so recording the roots is both
    sufficient and minimal.  Observed-constant non-root nets carry no
    extra information once the roots pin their inputs.
    """

    name = "hot-cone-specialization"
    version = 1

    def run(self, module: Module) -> None:
        constants = self.builder.profile.constants
        self.builder.const_roots = {
            name: int(constants[name])
            for name in self.builder.roots(module)
            if name in constants
        }


class ProfileOrderedLevelization(_PgoPass):
    """Rank nets hot-first and mark single-reader nets for fusion.

    Fusion eligibility is structural: a comb-driven net may be inlined
    into its consumer iff it has exactly one combinational reader pin,
    no sequential reader, is not a port, never feeds a ``div``/``mod``
    ``b`` pin (the generated guard references ``b`` twice — inlining
    would duplicate the whole subtree textually), and the fused
    expression tree stays within :func:`fuse_op_cap` operators.  The
    toggle ranking then lets codegen schedule the hottest cones first
    and contiguously.  Runs last: it freezes the plan on the builder.
    """

    name = "profile-ordered-levelization"
    version = 1

    def run(self, module: Module) -> None:
        builder = self.builder
        order = comb_topo_order(module)
        producer = {cell.pins["out"].name: cell for cell in order}
        port_names = {net.name for net in module.ports.values()}

        comb_readers: Dict[str, int] = {}
        blocked = set()  # seq-read or div/mod-b-fed nets: never fuse
        for cell in order:
            for pin, net in cell.pins.items():
                if pin == "out":
                    continue
                comb_readers[net.name] = comb_readers.get(net.name, 0) + 1
                if pin == "b" and cell.kind in ("div", "mod"):
                    blocked.add(net.name)
        for cell in module.cells.values():
            if cell.kind in _SEQ_KINDS or cell.kind == "submodule":
                for pin, net in cell.pins.items():
                    blocked.add(net.name)

        cap = fuse_op_cap()
        fuse: List[str] = []
        fused = set()
        cost: Dict[str, int] = {}
        for cell in order:  # topo order: producers before consumers
            out = cell.pins["out"].name
            ops = 1
            for pin, net in cell.pins.items():
                if pin != "out" and net.name in fused:
                    ops += cost[net.name]
            cost[out] = ops
            if (
                comb_readers.get(out, 0) == 1
                and out not in blocked
                and out not in port_names
                and ops <= cap
            ):
                fused.add(out)
                fuse.append(out)
        builder.fuse_nets = fuse

        toggles = builder.profile.toggles
        builder.hot_rank = {
            out: toggles[out] for out in producer if toggles.get(out)
        }
        builder.finish(module)


def pgo_passes(profile) -> Tuple[List[Pass], PgoPlanBuilder]:
    """The ``-O3`` analysis suffix for one profile.

    Returns the ordered pass list (append to the ``-O2`` pipeline) and
    the shared builder whose ``.plan`` holds the finished
    :class:`PgoPlan` after the pipeline runs.
    """
    builder = PgoPlanBuilder(profile)
    passes: List[Pass] = [
        DeadToggleGating(builder),
        HotConeSpecialization(builder),
        ProfileOrderedLevelization(builder),
    ]
    return passes, builder


def build_plan(module: Module, profile) -> PgoPlan:
    """Convenience: run just the PGO analyses over an already-optimized
    module and return the plan (what the session does under ``-O3``)."""
    from .base import PassManager

    passes, builder = pgo_passes(profile)
    PassManager(passes).run(module)
    assert builder.plan is not None
    return builder.plan

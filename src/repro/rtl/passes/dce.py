"""Dead-cell elimination: sweep logic that cannot reach an output.

Marks cells live by walking backwards from the module's output ports
through every input pin of every live cell; everything unmarked —
including sequential state whose value is never observed — is removed,
and orphaned nets are pruned.  Input ports are never touched, so the
module interface is stable across optimization levels (a property the
differential-simulation harness relies on: the same stimulus drives
both netlists).
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist import Cell, Module, Net
from .base import Pass


class DeadCellElim(Pass):
    name = "dead-cell-elim"
    version = 1

    def run(self, module: Module) -> None:
        producers: Dict[Net, Cell] = {}
        for cell in module.cells.values():
            for pin in cell.output_pins():
                net = cell.pins.get(pin)
                if net is not None:
                    producers[net] = cell
        live = set()
        worklist: List[Net] = [net for _, net in module.outputs()]
        seen = set(worklist)
        while worklist:
            cell = producers.get(worklist.pop())
            if cell is None or cell.name in live:
                continue
            live.add(cell.name)
            for pin in cell.input_pins():
                net = cell.pins.get(pin)
                if net is not None and net not in seen:
                    seen.add(net)
                    worklist.append(net)
        for name in [name for name in module.cells if name not in live]:
            module.remove_cell(name)
        module.prune_nets()

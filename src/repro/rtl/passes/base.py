"""The netlist optimization pass framework.

A :class:`Pass` is an in-place netlist transformation; a
:class:`PassManager` runs an ordered pipeline of them over an
:class:`~repro.rtl.Module`, recording per-pass wall-clock time and
cell/net deltas as :class:`PassStats`, and (optionally) re-checking
netlist integrity after every pass so a buggy transformation fails
loudly at the pass that broke the design rather than cycles later in
simulation.

Pipelines are identified by a value-based :meth:`PassManager.fingerprint`
— the ordered tuple of each pass's ``name@version`` — which the compile
driver folds into its artifact cache keys: changing the pipeline (a new
pass, a reordering, a version bump after fixing a pass) invalidates
exactly the artifacts that depended on it.

Standard pipelines are selected by optimization level, mirroring
compiler drivers:

* ``-O0`` — no passes (the netlist exactly as lowered);
* ``-O1`` — constant folding + dead-cell elimination;
* ``-O2`` — ``-O1`` plus common-cell sharing and delay-buffer
  coalescing (sharing runs twice: coalescing canonicalizes buffer and
  delay structure, which exposes a second round of sharing);
* ``-O3`` — ``-O2`` plus the profile-guided analyses of
  :mod:`repro.rtl.passes.pgo` when an activity profile is supplied.
  Without a profile ``-O3`` is exactly ``-O2`` — the graceful
  degradation the driver relies on for cold runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..netlist import Module, NetlistError, comb_topo_order  # noqa: F401
# (comb_topo_order is re-exported: it is part of the pass-author API.)

#: Optimization levels understood by :func:`pipeline_for_level`.
OPT_LEVELS = (0, 1, 2, 3)


class Pass:
    """Base class for netlist transformations.

    Subclasses set :attr:`name` (stable, kebab-case) and bump
    :attr:`version` whenever their behaviour changes — the pair is the
    pass's contribution to the pipeline fingerprint, i.e. its cache
    epoch.
    """

    name = "pass"
    version = 1

    def run(self, module: Module) -> None:
        raise NotImplementedError

    def fingerprint(self) -> str:
        return f"{self.name}@{self.version}"

    def __repr__(self):
        return f"{type(self).__name__}()"


class PassStats:
    """What one pass did to one module: time and size deltas."""

    __slots__ = (
        "name",
        "seconds",
        "cells_before",
        "cells_after",
        "nets_before",
        "nets_after",
    )

    def __init__(
        self,
        name: str,
        seconds: float,
        cells_before: int,
        cells_after: int,
        nets_before: int,
        nets_after: int,
    ):
        self.name = name
        self.seconds = seconds
        self.cells_before = cells_before
        self.cells_after = cells_after
        self.nets_before = nets_before
        self.nets_after = nets_after

    @property
    def cells_removed(self) -> int:
        return self.cells_before - self.cells_after

    @property
    def nets_removed(self) -> int:
        return self.nets_before - self.nets_after

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.name,
            "seconds": self.seconds,
            "cells_before": self.cells_before,
            "cells_after": self.cells_after,
            "nets_before": self.nets_before,
            "nets_after": self.nets_after,
        }

    def __repr__(self):
        return (
            f"PassStats({self.name}: {self.cells_before}->{self.cells_after} "
            f"cells, {self.seconds * 1000.0:.2f}ms)"
        )


def check_module(module: Module) -> None:
    """Netlist integrity: single drivers everywhere, no dangling pins."""
    module.validate()
    known = set(module.nets.values())
    for cell in module.cells.values():
        for pin, net in cell.pins.items():
            if net not in known:
                raise NetlistError(
                    f"{module.name}: cell {cell.name!r} pin {pin!r} wired to "
                    f"net {net.name!r} that is not in the module"
                )


class PassManager:
    """Runs an ordered pass pipeline over a module, with accounting."""

    def __init__(self, passes: Sequence[Pass] = (), check_integrity: bool = True):
        self.passes = list(passes)
        self.check_integrity = check_integrity

    def fingerprint(self) -> Tuple:
        """Value-based pipeline identity for artifact cache keys."""
        return ("pipeline",) + tuple(p.fingerprint() for p in self.passes)

    def run(self, module: Module) -> List[PassStats]:
        """Run every pass in order, in place.  Returns per-pass stats."""
        if self.check_integrity and self.passes:
            check_module(module)  # garbage in, garbage blamed on a pass
        stats: List[PassStats] = []
        for pass_ in self.passes:
            cells_before = len(module.cells)
            nets_before = len(module.nets)
            start = time.perf_counter()
            pass_.run(module)
            seconds = time.perf_counter() - start
            if self.check_integrity:
                try:
                    check_module(module)
                except NetlistError as error:
                    raise NetlistError(
                        f"pass {pass_.name!r} corrupted {module.name}: {error}"
                    ) from error
            stats.append(
                PassStats(
                    pass_.name,
                    seconds,
                    cells_before,
                    len(module.cells),
                    nets_before,
                    len(module.nets),
                )
            )
        return stats


def pipeline_for_level(
    level: int, check_integrity: bool = True, profile=None
) -> PassManager:
    """The standard ``-O<level>`` pipeline (see module docstring).

    ``profile`` (a :class:`~repro.rtl.profile.SimProfile`) only matters
    at ``-O3``: it appends the profile-guided analyses, whose
    fingerprints carry the profile digest into cache keys.  ``-O3``
    without a profile degrades to the ``-O2`` pipeline.
    """
    from .constant_fold import ConstantFold
    from .dce import DeadCellElim
    from .delay_coalesce import DelayCoalesce
    from .share import CommonCellSharing

    if level not in OPT_LEVELS:
        raise ValueError(
            f"unknown optimization level {level!r}; choose from {OPT_LEVELS}"
        )
    if level == 0:
        passes: List[Pass] = []
    elif level == 1:
        passes = [ConstantFold(), DeadCellElim()]
    else:
        passes = [
            ConstantFold(),
            CommonCellSharing(),
            DelayCoalesce(),
            CommonCellSharing(),
            DeadCellElim(),
        ]
    if level >= 3 and profile is not None:
        from .pgo import pgo_passes

        passes.extend(pgo_passes(profile)[0])
    return PassManager(passes, check_integrity=check_integrity)

"""Constant folding: evaluate compile-time-known logic away.

Walks the combinational cells in dependency order and replaces any cell
whose inputs are all constant with a ``const`` cell driving the same
net.  Evaluation reuses :func:`repro.rtl.simulate.eval_comb_cell` — the
simulator's own semantics — so a folded netlist cannot diverge from the
unfolded one on any stimulus.

A ``mux`` whose select is constant additionally degenerates to a
zero-cost buffer (``slice`` at lsb 0) of the chosen input, even when the
other input is unknown; delay-buffer coalescing then forwards the buffer
away entirely.
"""

from __future__ import annotations

from typing import Dict

from ..netlist import Module, Net
from ..simulate import eval_comb_cell
from .base import Pass, comb_topo_order


class ConstantFold(Pass):
    name = "constant-fold"
    version = 1

    def run(self, module: Module) -> None:
        known: Dict[Net, int] = {}
        for cell in comb_topo_order(module):
            if cell.kind == "const":
                known[cell.pins["out"]] = eval_comb_cell(cell, known)
                continue
            inputs = [cell.pins[pin] for pin in cell.input_pins()]
            out = cell.pins["out"]
            if all(net in known for net in inputs):
                value = eval_comb_cell(cell, known)
                cell.kind = "const"
                cell.params = {"value": value}
                cell.pins = {"out": out}
                known[out] = value
            elif cell.kind == "mux" and cell.pins["sel"] in known:
                chosen = (
                    cell.pins["a"]
                    if known[cell.pins["sel"]] & 1
                    else cell.pins["b"]
                )
                # slice@0 masks to the output width exactly like mux does.
                cell.kind = "slice"
                cell.params = {"lsb": 0}
                cell.pins = {"a": chosen, "out": out}

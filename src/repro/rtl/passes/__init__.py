"""Netlist optimization passes (see :mod:`repro.rtl.passes.base`)."""

from .base import (
    OPT_LEVELS,
    Pass,
    PassManager,
    PassStats,
    check_module,
    comb_topo_order,
    pipeline_for_level,
)
from .constant_fold import ConstantFold
from .dce import DeadCellElim
from .delay_coalesce import DelayCoalesce
from .pgo import (
    PGO_VERSION,
    DeadToggleGating,
    HotConeSpecialization,
    PgoPlan,
    PgoPlanBuilder,
    ProfileOrderedLevelization,
    build_plan,
    pgo_passes,
)
from .share import SHAREABLE_KINDS, CommonCellSharing, share_cells

__all__ = [
    "CommonCellSharing",
    "ConstantFold",
    "DeadCellElim",
    "DeadToggleGating",
    "DelayCoalesce",
    "HotConeSpecialization",
    "OPT_LEVELS",
    "PGO_VERSION",
    "Pass",
    "PassManager",
    "PassStats",
    "PgoPlan",
    "PgoPlanBuilder",
    "ProfileOrderedLevelization",
    "SHAREABLE_KINDS",
    "build_plan",
    "check_module",
    "comb_topo_order",
    "pgo_passes",
    "pipeline_for_level",
    "share_cells",
]

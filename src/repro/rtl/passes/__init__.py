"""Netlist optimization passes (see :mod:`repro.rtl.passes.base`)."""

from .base import (
    OPT_LEVELS,
    Pass,
    PassManager,
    PassStats,
    check_module,
    comb_topo_order,
    pipeline_for_level,
)
from .constant_fold import ConstantFold
from .dce import DeadCellElim
from .delay_coalesce import DelayCoalesce
from .share import SHAREABLE_KINDS, CommonCellSharing, share_cells

__all__ = [
    "CommonCellSharing",
    "ConstantFold",
    "DeadCellElim",
    "DelayCoalesce",
    "OPT_LEVELS",
    "Pass",
    "PassManager",
    "PassStats",
    "SHAREABLE_KINDS",
    "check_module",
    "comb_topo_order",
    "pipeline_for_level",
    "share_cells",
]

"""Measured auto-tuning of the simulation backend choice.

``--sim-backend auto`` used to mean "apply the static heuristic", and
the static heuristic was wrong often enough to matter —
``BENCH_sim.json`` caught it picking SWAR batching on ``blas`` where it
runs at 0.51x scalar.  This module replaces guessing with measuring: a
short calibration run drives every candidate engine over the actual
design — scalar compiled, SWAR batched at a few lane counts, the vector
backend at a few lane counts — records lane-cycles/s for each, persists
the measurements in the disk cache keyed by the design's
``structural_hash`` (plus vector flavor and :data:`TUNER_VERSION`), and
resolves ``auto`` from the recorded profile from then on.

Two guarantees shape :func:`choose`:

* **never slower than scalar** — a non-scalar configuration is selected
  only when its *measured* throughput beats the measured scalar
  compiled throughput; ties and losses fall back to ``compiled``;
* **estimates stay conservative** — the estimate for a requested lane
  count is the measurement at the *nearest calibrated lane point*, not
  an extrapolation.

When no measurement exists and calibration is disabled, the decision
falls back to ``"compiled"``, whose batch path applies the static
:func:`~repro.rtl.compile.swar_profitable` predicate — so even the cold
path never repeats the blas regression.

Knobs: ``$REPRO_TUNER_CYCLES`` (calibration cycles per candidate),
``$REPRO_TUNER_SWAR_LANES`` / ``$REPRO_TUNER_VECTOR_LANES``
(comma-separated candidate lane counts).
"""

from __future__ import annotations

import os
import time
from typing import Dict, NamedTuple, Optional, Tuple

from .netlist import Module
from .compile import (
    BatchedCompiledSimulator,
    CompiledSimulator,
    _flattened,
)
from .vectorize import VectorCompiledSimulator, vector_flavor

#: Version of the calibration/choice policy.  Part of every persisted
#: tuner entry's key: bump it whenever the measured quantities or the
#: decision rule change, so stale profiles become cache misses instead
#: of steering backend selection with incomparable numbers.
TUNER_VERSION = 1

#: Default calibration cycles per candidate configuration.
DEFAULT_TUNER_CYCLES = 32

#: Default candidate lane counts per lane-parallel backend.  SWAR
#: saturates by 64 lanes; the vector backend is calibrated further out
#: (but far enough in to keep calibration under a second per design).
DEFAULT_SWAR_LANES = (16, 64)
DEFAULT_VECTOR_LANES = (64, 256, 1024)
#: The stdlib vector flavor is pure-Python per-lane loops — calibrating
#: it at mega-lane counts would cost more than it could ever repay.
DEFAULT_VECTOR_LANES_STDLIB = (8, 32)

_SEED = 0x7E


class TunerDecision(NamedTuple):
    """One resolved ``auto`` choice: which engine, from which evidence."""

    backend: str  #: concrete backend name ("compiled"/"batched"/"vector")
    lanes: int  #: the lane count the decision was made for
    source: str  #: "measured" | "static" | "static-fallback"
    estimates: Optional[Dict[str, float]] = None  #: lane-cycles/s per backend
    flavor: Optional[str] = None  #: vector flavor the profile was taken with


def _lane_candidates(env_name: str, default: Tuple[int, ...]) -> Tuple[int, ...]:
    raw = os.environ.get(env_name)
    if not raw:
        return default
    lanes = tuple(
        int(part) for part in raw.split(",") if part.strip()
    )
    return tuple(l for l in lanes if l >= 2) or default


def _tuner_cycles(cycles: Optional[int]) -> int:
    if cycles is not None:
        return max(4, int(cycles))
    return max(4, int(os.environ.get("REPRO_TUNER_CYCLES", DEFAULT_TUNER_CYCLES)))


def _timed_lane_cps(sim, lanes: int, cycles: int) -> float:
    """Measured lane-cycles/s of one warmed engine instance."""
    sim.run_random(2, seed=_SEED)  # warm: codegen/exec paid outside timing
    start = time.perf_counter()
    sim.run_random(cycles, seed=_SEED)
    elapsed = max(time.perf_counter() - start, 1e-9)
    return lanes * cycles / elapsed


def measure_design(
    module: Module,
    cycles: Optional[int] = None,
    codegen_store=None,
    flavor: Optional[str] = None,
) -> Dict:
    """Calibrate every candidate engine on ``module``; returns the
    persistable measurement payload (see :func:`valid_tuner_payload`)."""
    flavor = vector_flavor(flavor)
    cycles = _tuner_cycles(cycles)
    module = _flattened(module)
    scalar = CompiledSimulator(module, codegen_store=codegen_store)
    scalar_cps = _timed_lane_cps(scalar, 1, cycles)
    swar: Dict[int, float] = {}
    for lanes in _lane_candidates("REPRO_TUNER_SWAR_LANES", DEFAULT_SWAR_LANES):
        sim = BatchedCompiledSimulator(
            module, lanes, codegen_store=codegen_store
        )
        swar[lanes] = _timed_lane_cps(sim, lanes, cycles)
    vector_defaults = (
        DEFAULT_VECTOR_LANES if flavor == "numpy"
        else DEFAULT_VECTOR_LANES_STDLIB
    )
    vector: Dict[int, float] = {}
    for lanes in _lane_candidates("REPRO_TUNER_VECTOR_LANES", vector_defaults):
        sim = VectorCompiledSimulator(
            module, lanes, codegen_store=codegen_store, flavor=flavor
        )
        vector[lanes] = _timed_lane_cps(sim, lanes, cycles)
    return {
        "tuner_version": TUNER_VERSION,
        "structural_hash": module.structural_hash(),
        "flavor": flavor,
        "cycles": cycles,
        "scalar_cps": scalar_cps,
        "swar": swar,
        "vector": vector,
    }


_TUNER_FIELDS = frozenset(
    (
        "tuner_version",
        "structural_hash",
        "flavor",
        "cycles",
        "scalar_cps",
        "swar",
        "vector",
    )
)


def valid_tuner_payload(payload, structural_hash: str, flavor: str) -> bool:
    """Is ``payload`` a well-formed tuner profile for this exact key?

    The single validation authority for persisted tuner entries: the
    store applies it on load (hit counters reflect *usable* profiles)
    and :func:`tune` re-applies it against duck-typed stores.
    """
    return (
        isinstance(payload, dict)
        and _TUNER_FIELDS <= set(payload)
        and payload["tuner_version"] == TUNER_VERSION
        and payload["structural_hash"] == structural_hash
        and payload["flavor"] == flavor
        and isinstance(payload["scalar_cps"], (int, float))
        and isinstance(payload["swar"], dict)
        and isinstance(payload["vector"], dict)
    )


def _estimate(points: Dict[int, float], lanes: int) -> float:
    """Throughput estimate at ``lanes``: the nearest calibrated point
    (larger point on ties — lane-cycles/s is non-decreasing in lanes
    for these engines, so this is the less optimistic of the two)."""
    if not points:
        return 0.0
    nearest = min(points, key=lambda point: (abs(point - lanes), -point))
    return points[nearest]


def choose(payload: Dict, lanes: int) -> TunerDecision:
    """Resolve one measured profile into a backend decision.

    Picks the backend with the best estimated lane-cycles/s at the
    requested lane count; a non-scalar backend wins only by *strictly*
    beating measured scalar throughput, so ``auto`` can never select a
    configuration its own profile recorded as slower than scalar.
    """
    scalar_cps = float(payload["scalar_cps"])
    estimates = {
        "compiled": scalar_cps,
        "batched": _estimate(payload["swar"], lanes),
        "vector": _estimate(payload["vector"], lanes),
    }
    backend = max(estimates, key=estimates.get)
    if estimates[backend] <= scalar_cps:
        backend = "compiled"
    return TunerDecision(
        backend=backend,
        lanes=lanes,
        source="measured",
        estimates=estimates,
        flavor=payload.get("flavor"),
    )


def tune(
    module: Module,
    lanes: int,
    store=None,
    codegen_store=None,
    cycles: Optional[int] = None,
    calibrate: bool = True,
    flavor: Optional[str] = None,
) -> TunerDecision:
    """Resolve ``auto`` for one (design, lane count).

    ``store`` is duck-typed like the codegen store (see
    ``repro.driver.cache.TunerStore``): ``load(structural_hash, flavor)
    -> payload | None`` plus ``save(payload)``.  A warm store answers
    without simulating anything; a cold store triggers one calibration
    run (unless ``calibrate=False``, e.g. under tight CLI latency) and
    persists the profile for every later session over the same design.

    Single-lane requests short-circuit to scalar compiled — there is no
    lane parallelism to tune.
    """
    lanes = int(lanes)
    if lanes <= 1:
        return TunerDecision(backend="compiled", lanes=lanes, source="static")
    flavor = vector_flavor(flavor)
    module = _flattened(module)
    structural = module.structural_hash()
    payload = None
    if store is not None:
        payload = store.load(structural, flavor)
        if payload is not None and not valid_tuner_payload(
            payload, structural, flavor
        ):
            payload = None
    if payload is None:
        if not calibrate:
            # Static fallback: "compiled" batch paths consult
            # swar_profitable, so SWAR-hostile designs stay sequential.
            return TunerDecision(
                backend="compiled", lanes=lanes, source="static-fallback",
                flavor=flavor,
            )
        payload = measure_design(
            module, cycles=cycles, codegen_store=codegen_store, flavor=flavor
        )
        if store is not None:
            store.save(payload)
    return choose(payload, lanes)

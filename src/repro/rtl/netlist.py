"""RTL netlist representation.

The elaborator lowers Lilac programs into netlists of primitive cells;
generator stand-ins emit netlists directly; the LI substrate wraps them.
Netlists are hierarchical (a cell may be a submodule instance) and can be
flattened for simulation and synthesis modelling.

Primitive cells
---------------

====== =========================== ==========================
kind   pins                        params
====== =========================== ==========================
const  out                         value
add    a, b, out
sub    a, b, out
mul    a, b, out
div    a, b, out
mod    a, b, out
and    a, b, out
or     a, b, out
xor    a, b, out
not    a, out
shl    a, out                      amount
shr    a, out                      amount
eq     a, b, out (1 bit)
lt     a, b, out (1 bit)
mux    sel, a, b, out              out = sel ? a : b
slice  a, out                      lsb
concat a, b, out                   out = {a, b}
reg    d, q                        init
regen  d, en, q                    init
fifo   in_data, in_valid,          depth
       in_ready, out_data,
       out_valid, out_ready
====== =========================== ==========================

``reg``/``regen``/``fifo`` are sequential; everything else is
combinational.  All cells are implicitly clocked by the single global
clock.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

SEQUENTIAL_KINDS = frozenset({"reg", "regen", "fifo"})

COMBINATIONAL_KINDS = frozenset(
    {
        "const",
        "add",
        "sub",
        "mul",
        "div",
        "mod",
        "and",
        "or",
        "xor",
        "not",
        "shl",
        "shr",
        "eq",
        "lt",
        "mux",
        "slice",
        "concat",
    }
)

# Output pins per cell kind (everything else is an input pin).
OUTPUT_PINS = {
    "fifo": ("in_ready", "out_data", "out_valid"),
    "reg": ("q",),
    "regen": ("q",),
}
DEFAULT_OUTPUT_PINS = ("out",)


class NetlistError(Exception):
    pass


class Net:
    """A wire with a width.  Nets belong to exactly one module."""

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int):
        if width < 1:
            raise NetlistError(f"net {name!r} must have positive width")
        self.name = name
        self.width = int(width)

    def __repr__(self):
        return f"Net({self.name}[{self.width}])"


class Cell:
    """A primitive cell or a submodule instance."""

    __slots__ = ("name", "kind", "pins", "params", "module")

    def __init__(
        self,
        name: str,
        kind: str,
        pins: Dict[str, Net],
        params: Optional[Dict] = None,
        module: Optional["Module"] = None,
    ):
        self.name = name
        self.kind = kind
        self.pins = dict(pins)
        self.params = dict(params or {})
        self.module = module
        if kind == "submodule" and module is None:
            raise NetlistError(f"submodule cell {name!r} needs a module")

    def output_pins(self) -> Tuple[str, ...]:
        if self.kind == "submodule":
            return tuple(
                pin for pin, direction in self.module.port_dirs.items()
                if direction == "out"
            )
        return OUTPUT_PINS.get(self.kind, DEFAULT_OUTPUT_PINS)

    def input_pins(self) -> Tuple[str, ...]:
        outs = set(self.output_pins())
        return tuple(pin for pin in self.pins if pin not in outs)

    def is_sequential(self) -> bool:
        return self.kind in SEQUENTIAL_KINDS

    def structural_key(self) -> Tuple:
        """Value-based identity: name, kind, params, pin wiring by net name.

        The cell's own name is part of the key: this is positional
        identity for whole-netlist comparison (idempotence checks,
        ``Module.__eq__``), not function equivalence — two same-function
        cells with different names compare unequal.  Passes hunting for
        merge candidates build their own name-free signatures (see
        ``share_cells``).
        """
        params = tuple(sorted((k, repr(v)) for k, v in self.params.items()))
        pins = tuple(
            sorted((pin, net.name, net.width) for pin, net in self.pins.items())
        )
        sub = self.module.structural_key() if self.module is not None else None
        return (self.name, self.kind, params, pins, sub)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Cell):
            return NotImplemented
        return self.structural_key() == other.structural_key()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    # Identity hashing is kept deliberately: cells are never looked up
    # *by equality* in hash containers, and value hashing would break the
    # moment a pass rewires a pin while the cell sits in a set.
    __hash__ = object.__hash__

    def __repr__(self):
        return f"Cell({self.name}: {self.kind})"


class Module:
    """A netlist module: ports, nets, cells."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.cells: Dict[str, Cell] = {}
        self.ports: Dict[str, Net] = {}
        self.port_dirs: Dict[str, str] = {}
        self._counter = itertools.count()

    # Net management -------------------------------------------------------

    def net(self, name: str, width: int) -> Net:
        if name in self.nets:
            raise NetlistError(f"{self.name}: duplicate net {name!r}")
        net = Net(name, width)
        self.nets[name] = net
        return net

    def fresh_net(self, width: int, hint: str = "n") -> Net:
        name = f"{hint}${next(self._counter)}"
        while name in self.nets:
            name = f"{hint}${next(self._counter)}"
        return self.net(name, width)

    def add_input(self, name: str, width: int) -> Net:
        net = self.net(name, width)
        self.ports[name] = net
        self.port_dirs[name] = "in"
        return net

    def add_output(self, name: str, width: int) -> Net:
        net = self.net(name, width)
        self.ports[name] = net
        self.port_dirs[name] = "out"
        return net

    def inputs(self) -> List[Tuple[str, Net]]:
        return [
            (name, net)
            for name, net in self.ports.items()
            if self.port_dirs[name] == "in"
        ]

    def outputs(self) -> List[Tuple[str, Net]]:
        return [
            (name, net)
            for name, net in self.ports.items()
            if self.port_dirs[name] == "out"
        ]

    # Cell management -------------------------------------------------------

    def add_cell(
        self,
        kind: str,
        pins: Dict[str, Net],
        params: Optional[Dict] = None,
        name: Optional[str] = None,
        module: Optional["Module"] = None,
    ) -> Cell:
        if name is None:
            name = f"{kind}${next(self._counter)}"
        if name in self.cells:
            raise NetlistError(f"{self.name}: duplicate cell {name!r}")
        cell = Cell(name, kind, pins, params, module)
        self.cells[name] = cell
        return cell

    def add_submodule(
        self, module: "Module", pins: Dict[str, Net], name: Optional[str] = None
    ) -> Cell:
        missing = set(module.ports) - set(pins)
        if missing:
            raise NetlistError(
                f"{self.name}: submodule {module.name} missing pins {missing}"
            )
        return self.add_cell("submodule", pins, name=name, module=module)

    # Convenience builders ---------------------------------------------------

    def constant(self, value: int, width: int) -> Net:
        out = self.fresh_net(width, "const")
        self.add_cell("const", {"out": out}, {"value": value})
        return out

    def binop(self, kind: str, a: Net, b: Net, width: Optional[int] = None) -> Net:
        out = self.fresh_net(width or max(a.width, b.width), kind)
        self.add_cell(kind, {"a": a, "b": b, "out": out})
        return out

    def unop(self, kind: str, a: Net, width: Optional[int] = None, **params) -> Net:
        out = self.fresh_net(width or a.width, kind)
        self.add_cell(kind, {"a": a, "out": out}, params)
        return out

    def mux(self, sel: Net, a: Net, b: Net) -> Net:
        out = self.fresh_net(max(a.width, b.width), "mux")
        self.add_cell("mux", {"sel": sel, "a": a, "b": b, "out": out})
        return out

    def register(self, d: Net, init: int = 0, en: Optional[Net] = None) -> Net:
        q = self.fresh_net(d.width, "q")
        if en is None:
            self.add_cell("reg", {"d": d, "q": q}, {"init": init})
        else:
            self.add_cell("regen", {"d": d, "en": en, "q": q}, {"init": init})
        return q

    def delay_chain(self, d: Net, cycles: int, en: Optional[Net] = None) -> Net:
        current = d
        for _ in range(cycles):
            current = self.register(current, en=en)
        return current

    # Structural identity ----------------------------------------------------

    def structural_key(self) -> Tuple:
        """Canonical value-based form of the whole netlist.

        Independent of insertion order and object identity; two modules
        with the same ports, nets and cell wiring (by name) are equal.
        """
        ports = tuple(
            (name, self.ports[name].width, self.port_dirs[name])
            for name in sorted(self.ports)
        )
        nets = tuple(
            (name, self.nets[name].width) for name in sorted(self.nets)
        )
        cells = tuple(
            self.cells[name].structural_key() for name in sorted(self.cells)
        )
        return (self.name, ports, nets, cells)

    def structural_hash(self) -> str:
        """Stable digest of :meth:`structural_key` (for cache keys/logs)."""
        text = repr(self.structural_key()).encode("utf-8")
        return hashlib.sha256(text).hexdigest()[:16]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Module):
            return NotImplemented
        return self.structural_key() == other.structural_key()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    # Same rationale as Cell: modules live in caches keyed by identity
    # and mutate under optimization passes, so value hashing is unsafe.
    __hash__ = object.__hash__

    # Surgery (used by optimization passes) ----------------------------------

    def replace_net_uses(self, old: Net, new: Net) -> int:
        """Rewire every cell *input* pin reading ``old`` to read ``new``.

        Drivers (output pins) are left alone, so this is the primitive
        for forwarding a value past a redundant cell.  Returns the number
        of pins rewired.
        """
        if old.width != new.width:
            raise NetlistError(
                f"{self.name}: cannot rewire {old.name}[{old.width}] "
                f"to {new.name}[{new.width}]"
            )
        rewired = 0
        for cell in self.cells.values():
            outs = set(cell.output_pins())
            for pin, net in cell.pins.items():
                if net is old and pin not in outs:
                    cell.pins[pin] = new
                    rewired += 1
        return rewired

    def remove_cell(self, name: str) -> Cell:
        cell = self.cells.pop(name, None)
        if cell is None:
            raise NetlistError(f"{self.name}: no cell {name!r} to remove")
        return cell

    def prune_nets(self) -> int:
        """Drop nets that no cell pins and no port exposes.  Returns the
        number of nets removed."""
        used = set(self.ports.values())
        for cell in self.cells.values():
            used.update(cell.pins.values())
        dead = [name for name, net in self.nets.items() if net not in used]
        for name in dead:
            del self.nets[name]
        return len(dead)

    # Analysis ---------------------------------------------------------------

    def drivers(self) -> Dict[Net, Tuple[Cell, str]]:
        """Map each net to its driving (cell, pin)."""
        driven: Dict[Net, Tuple[Cell, str]] = {}
        for cell in self.cells.values():
            for pin in cell.output_pins():
                net = cell.pins.get(pin)
                if net is None:
                    continue
                if net in driven:
                    raise NetlistError(
                        f"{self.name}: net {net.name!r} driven by both "
                        f"{driven[net][0].name} and {cell.name}"
                    )
                driven[net] = (cell, pin)
        return driven

    def validate(self) -> None:
        """Every non-input net must have exactly one driver."""
        driven = self.drivers()
        input_nets = {net for name, net in self.inputs()}
        for net in self.nets.values():
            if net in input_nets:
                if net in driven:
                    raise NetlistError(
                        f"{self.name}: input net {net.name!r} also driven internally"
                    )
                continue
            if net not in driven:
                raise NetlistError(f"{self.name}: net {net.name!r} has no driver")

    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells.values():
            counts[cell.kind] = counts.get(cell.kind, 0) + 1
        return counts


def onehot_mux(module: Module, cases, width: int) -> Net:
    """Balanced one-hot selector: OR-tree over masked inputs.

    ``cases`` is a list of (select, value) with mutually exclusive,
    one-hot select bits (time-multiplexed schedules guarantee this).
    Depth is logarithmic — how synthesis tools actually map wide,
    exclusive selects.
    """
    if not cases:
        raise NetlistError("onehot_mux needs at least one case")
    masked: List[Net] = []
    zero = module.constant(0, width)
    for select, value in cases:
        masked.append(module.mux(select, value, zero))
    while len(masked) > 1:
        merged: List[Net] = []
        for index in range(0, len(masked) - 1, 2):
            merged.append(
                module.binop("or", masked[index], masked[index + 1], width)
            )
        if len(masked) % 2:
            merged.append(masked[-1])
        masked = merged
    return masked[0]


def comb_topo_order(module: Module) -> List[Cell]:
    """Combinational cells in dependency order (producers first).

    Sequential and submodule cells break the dependency chain — their
    outputs are treated like free inputs — which is both what per-cycle
    evaluation needs (state was driven before combinational settling)
    and the conservative boundary constant folding needs.  Raises on
    combinational loops.
    """
    comb_cells = [
        c for c in module.cells.values() if c.kind in COMBINATIONAL_KINDS
    ]
    producers: Dict[Net, Cell] = {}
    for cell in comb_cells:
        for pin in cell.output_pins():
            net = cell.pins.get(pin)
            if net is not None:
                producers[net] = cell
    # Edges: producer -> consumer when consumer reads producer's net.
    indegree: Dict[str, int] = {c.name: 0 for c in comb_cells}
    consumers: Dict[str, List[Cell]] = {c.name: [] for c in comb_cells}
    for cell in comb_cells:
        for pin in cell.input_pins():
            producer = producers.get(cell.pins.get(pin))
            if producer is not None and producer.name != cell.name:
                consumers[producer.name].append(cell)
                indegree[cell.name] += 1
    ready = deque(c for c in comb_cells if indegree[c.name] == 0)
    order: List[Cell] = []
    while ready:
        cell = ready.popleft()
        order.append(cell)
        for consumer in consumers[cell.name]:
            indegree[consumer.name] -= 1
            if indegree[consumer.name] == 0:
                ready.append(consumer)
    if len(order) != len(comb_cells):
        cyclic = [c.name for c in comb_cells if indegree[c.name] > 0]
        raise NetlistError(
            f"{module.name}: combinational loop through {cyclic[:5]}"
        )
    return order


def flatten(module: Module, name: Optional[str] = None) -> Module:
    """Inline all submodule instances recursively into a flat module."""
    flat = Module(name or module.name)
    for port_name, net in module.ports.items():
        if module.port_dirs[port_name] == "in":
            flat.add_input(port_name, net.width)
        else:
            flat.add_output(port_name, net.width)
    _inline(module, flat, prefix="", net_map={
        net: flat.nets[pname] for pname, net in module.ports.items()
    })
    return flat


def _inline(source: Module, target: Module, prefix: str, net_map: Dict[Net, Net]):
    # Create target nets for every source net not already mapped (ports).
    for net in source.nets.values():
        if net not in net_map:
            net_map[net] = target.net(f"{prefix}{net.name}", net.width)
    for cell in source.cells.values():
        if cell.kind == "submodule":
            sub = cell.module
            sub_map: Dict[Net, Net] = {}
            for pname, pnet in sub.ports.items():
                outer = cell.pins.get(pname)
                if outer is None:
                    raise NetlistError(
                        f"{source.name}: submodule {cell.name} pin {pname} unconnected"
                    )
                sub_map[pnet] = net_map[outer]
            _inline(sub, target, f"{prefix}{cell.name}.", sub_map)
        else:
            pins = {pin: net_map[net] for pin, net in cell.pins.items()}
            target.add_cell(
                cell.kind, pins, cell.params, name=f"{prefix}{cell.name}"
            )

"""Mega-lane vectorized simulation backend: netlist → word-packed kernels.

The third codegen target (after the scalar and SWAR generators of
:mod:`repro.rtl.compile`).  Where the batched SWAR backend packs K lanes
into one CPython bignum — and saturates between 16 and 64 lanes because
every operation's cost grows with the packed integer's limb count — this
generator gives every net a *word-packed column*: one value per lane,
stored contiguously, so a single vectorized operation advances thousands
of lanes at fixed per-op overhead.

Two flavors share one code shape, selected by :func:`vector_flavor`:

* **numpy** — each net ≤ 64 bits wide is one ``numpy`` array of dtype
  ``uint64`` and shape ``(lanes,)``; combinational cells become one or
  two whole-column ufunc calls (``+``, ``&``, ``np.where``, ...).  All
  arithmetic is exact under the unsigned mod-2^width contract: uint64
  wraps mod 2^64 and an explicit mask narrows to the net width, division
  and modulo route through ``np.floor_divide``/``np.remainder`` with a
  ``where=`` guard so x/0 == 0, and shift amounts that would be C-level
  undefined behavior (>= 64) are folded to constant zero columns at
  generation time.  Every integer literal is materialized as a
  ``np.uint64`` scalar in the prelude, which keeps numpy 1.x from
  promoting wide masks to float64 and satisfies NEP 50 on 2.x.
* **stdlib** — the pure-stdlib word-parallel fallback when numpy is not
  installed: columns are ``array('Q')`` buffers and every cell is a
  per-lane list comprehension.  Bit-identical, much slower; it exists so
  ``repro`` degrades cleanly instead of failing (install the
  ``repro[vector]`` extra for the fast path).

Nets wider than 64 bits live as per-lane Python-int lists in both
flavors (the same escape hatch the SWAR generator uses), and FIFOs keep
one deque per lane.  The generated code never mutates a column in
place — slots are only ever rebound to fresh columns — which is what
makes a register latch a single reference copy and lets constant columns
be shared.

:class:`VectorCompiledSimulator` presents the same vectorized surface as
:class:`~repro.rtl.compile.BatchedCompiledSimulator` (per-lane poke
lists, one output dict per lane) and is gated by the very same
:func:`~repro.rtl.compile.differential_check` contract: bit-identical,
lane for lane, to K independent interpreter runs.  Generated kernels
persist through the ``codegen`` pseudo-stage of the disk cache, keyed
``(structural_hash, backend, lanes, CODEGEN_VERSION)`` where the backend
tag carries the flavor (``"vector-numpy"`` / ``"vector-stdlib"``).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .netlist import Cell, Module, NetlistError, comb_topo_order
from .simulate import random_stimulus_batch

#: Lane-column word width: nets at or below it are packed (uint64 /
#: array('Q') columns), wider nets fall back to per-lane int lists.
VECTOR_WORD = 64

#: Mask of one full machine word.
_WORD_MASK = (1 << VECTOR_WORD) - 1


def _nwords(width: int) -> int:
    """How many 64-bit words a value of ``width`` bits occupies."""
    return (width + VECTOR_WORD - 1) // VECTOR_WORD

#: The two kernel flavors, in preference order.
VECTOR_FLAVORS = ("numpy", "stdlib")


class SimBackendUnavailable(NetlistError):
    """A simulation backend's required runtime support is not installed.

    Raised when the numpy kernel flavor is explicitly requested (via
    ``flavor="numpy"`` or ``$REPRO_VECTOR_FLAVOR=numpy``) but numpy is
    missing; plain ``vector`` requests silently fall back to the stdlib
    flavor instead.
    """


_NUMPY = None
_NUMPY_PROBED = False


def _numpy():
    """The numpy module, or None when not installed (probed once)."""
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
        _NUMPY_PROBED = True
    return _NUMPY


def vector_flavor(flavor: Optional[str] = None) -> str:
    """Resolve the kernel flavor: explicit arg → ``$REPRO_VECTOR_FLAVOR``
    → ``"numpy"`` when importable, else ``"stdlib"``."""
    requested = flavor or os.environ.get("REPRO_VECTOR_FLAVOR") or None
    if requested is None:
        return "numpy" if _numpy() is not None else "stdlib"
    if requested not in VECTOR_FLAVORS:
        raise NetlistError(
            f"unknown vector flavor {requested!r}; "
            f"available: {list(VECTOR_FLAVORS)}"
        )
    if requested == "numpy" and _numpy() is None:
        raise SimBackendUnavailable(
            "the numpy vector flavor was requested but numpy is not "
            "installed; pip install 'lilac-repro[vector]' or use the "
            "stdlib flavor"
        )
    return requested


def vector_backend_tag(flavor: str) -> str:
    """The codegen-store backend tag for one flavor's kernels."""
    return f"vector-{flavor}"


class _VecConsts:
    """Constant pool for one vector compilation.

    Scalars (masks, shift amounts, flip patterns) and full lane columns
    (constant cells, the zero column) are emitted once in the generated
    prelude and threaded into the step functions as keyword defaults, so
    the hot loop reads them as ``LOAD_FAST``.
    """

    def __init__(self, flavor: str, lanes: int):
        self.flavor = flavor
        self.lanes = lanes
        self._scalars: Dict[int, str] = {}
        self._columns: Dict[int, str] = {}
        self._wides: Dict[int, str] = {}
        self.defs: List[str] = []

    def _fresh(self, hint: str) -> str:
        name = f"_{hint}"
        if any(line.startswith(f"{name} = ") for line in self.defs):
            name = f"_{hint}x{len(self.defs)}"
        return name

    def scalar(self, value: int, hint: str, uses: set) -> str:
        """A ``np.uint64`` scalar (numpy) / plain int literal (stdlib)."""
        if self.flavor != "numpy":
            return hex(value)
        name = self._scalars.get(value)
        if name is None:
            name = self._fresh(hint)
            self._scalars[value] = name
            self.defs.append(f"{name} = _np.uint64({hex(value)})")
        uses.add(name)
        return name

    def mask(self, width: int, uses: set) -> str:
        return self.scalar((1 << width) - 1, f"M{width}", uses)

    def column(self, value: int, hint: str, uses: set) -> str:
        """A whole packed column holding ``value`` in every lane."""
        name = self._columns.get(value)
        if name is None:
            name = self._fresh(hint)
            self._columns[value] = name
            if self.flavor == "numpy":
                self.defs.append(
                    f"{name} = _np.full(_LANES, _np.uint64({hex(value)}))"
                )
            else:
                self.defs.append(
                    f'{name} = _array("Q", [{hex(value)}]) * _LANES'
                )
        uses.add(name)
        return name

    def zeros(self, uses: set) -> str:
        return self.column(0, "Z", uses)

    def wide_column(self, value: int, hint: str, uses: set) -> str:
        """A per-lane list column for constants wider than one word."""
        name = self._wides.get(value)
        if name is None:
            name = self._fresh(hint)
            self._wides[value] = name
            self.defs.append(f"{name} = [{value}] * _LANES")
        uses.add(name)
        return name

    def wide_words(self, value: int, n_words: int, hint: str,
                   uses: set) -> str:
        """A multi-word constant: a list of ``n_words`` full columns
        holding the value's 64-bit words (numpy flavor only)."""
        key = (value, n_words)
        name = self._wides.get(key)
        if name is None:
            name = self._fresh(hint)
            self._wides[key] = name
            words = ", ".join(
                f"_np.full(_LANES, _np.uint64("
                f"{hex((value >> (VECTOR_WORD * i)) & _WORD_MASK)}))"
                for i in range(n_words)
            )
            self.defs.append(f"{name} = [{words}]")
        uses.add(name)
        return name


def _generate_vector_source(
    module: Module, slot: Dict[str, int], lanes: int, flavor: str
) -> Tuple[str, List[str], List[int], List[str], List[int]]:
    """Generate the lane-column evaluate/latch pair for one flavor.

    The invariant every emitted statement preserves (exactly as in the
    SWAR generator): lane values are *clean* — strictly below
    ``2^width`` — and columns are never mutated in place, only rebound.
    """
    numpy_flavor = flavor == "numpy"
    consts = _VecConsts(flavor, lanes)
    uses_ev: set = set()
    uses_lt: set = set()
    div_helpers = set()

    def wide(net) -> bool:
        return net.width > VECTOR_WORD

    def lanes_of(net, uses: set) -> str:
        """Expression yielding an iterable of the net's per-lane ints."""
        expr = f"s[{slot[net.name]}]"
        if numpy_flavor and not wide(net):
            return f"{expr}.tolist()"
        if numpy_flavor:
            # Wide nets are multi-word column lists in this flavor.
            div_helpers.add("_wunpack")
            uses.add("_wunpack")
            return f"_wunpack({expr})"
        return expr

    def pk(listcomp: str, uses: set) -> str:
        """Pack a list-comprehension of clean ints into a column."""
        if numpy_flavor:
            uses.add("_np")
            uses.add("_U64")
            return f"_np.array({listcomp}, _U64)"
        uses.add("_array")
        return f'_array("Q", {listcomp})'

    def pk_wide(listcomp: str, n_words: int, uses: set) -> str:
        """Pack clean per-lane ints into a multi-word column list."""
        div_helpers.add("_wpack")
        uses.add("_wpack")
        return f"_wpack({listcomp}, {n_words})"

    # -- numpy flavor: whole-column kernels -----------------------------

    def comb_numpy_packed(cell: Cell) -> List[str]:
        pins, kind = cell.pins, cell.kind
        out = pins["out"]
        so = slot[out.name]
        wo = out.width
        uses_ev.add("_np")

        def sl(pin: str) -> str:
            return f"s[{slot[pins[pin].name]}]"

        def w(pin: str) -> int:
            return pins[pin].width

        def emit(expr: str, need_mask: bool) -> List[str]:
            if need_mask:
                expr = f"({expr}) & {consts.mask(wo, uses_ev)}"
            return [f"    s[{so}] = {expr}"]

        def zeros() -> List[str]:
            return [f"    s[{so}] = {consts.zeros(uses_ev)}"]

        if kind == "const":
            value = int(cell.params["value"]) & ((1 << wo) - 1)
            return [
                f"    s[{so}] = {consts.column(value, f'V{so}', uses_ev)}"
            ]
        if kind == "add":
            # uint64 wraps mod 2^64, so a 64-bit out needs no mask.
            need = wo < VECTOR_WORD and wo < max(w("a"), w("b")) + 1
            return emit(f"{sl('a')} + {sl('b')}", need)
        if kind == "sub":
            return emit(f"{sl('a')} - {sl('b')}", wo < VECTOR_WORD)
        if kind == "mul":
            # Low bits of the wrapped product are exact for wo <= 64.
            need = wo < VECTOR_WORD and w("a") + w("b") > wo
            return emit(f"{sl('a')} * {sl('b')}", need)
        if kind == "div":
            div_helpers.add("_vdiv")
            uses_ev.add("_vdiv")
            return emit(f"_vdiv({sl('a')}, {sl('b')})", w("a") > wo)
        if kind == "mod":
            div_helpers.add("_vmod")
            uses_ev.add("_vmod")
            return emit(
                f"_vmod({sl('a')}, {sl('b')})", min(w("a"), w("b")) > wo
            )
        if kind == "and":
            return emit(
                f"{sl('a')} & {sl('b')}", min(w("a"), w("b")) > wo
            )
        if kind in ("or", "xor"):
            op = "|" if kind == "or" else "^"
            return emit(
                f"{sl('a')} {op} {sl('b')}", max(w("a"), w("b")) > wo
            )
        if kind == "not":
            flip_width = max(w("a"), wo)
            flip = consts.scalar(
                (1 << flip_width) - 1, f"F{flip_width}", uses_ev
            )
            return emit(f"{sl('a')} ^ {flip}", w("a") > wo)
        if kind == "eq":
            uses_ev.add("_U64")
            return emit(f"({sl('a')} == {sl('b')}).astype(_U64)", False)
        if kind == "lt":
            uses_ev.add("_U64")
            return emit(f"({sl('a')} < {sl('b')}).astype(_U64)", False)
        if kind == "mux":
            cond = sl("sel")
            if w("sel") > 1:
                cond = f"{cond} & {consts.scalar(1, 'K1', uses_ev)}"
            return emit(
                f"_np.where({cond}, {sl('a')}, {sl('b')})",
                max(w("a"), w("b")) > wo,
            )
        if kind == "shl":
            amount = int(cell.params["amount"])
            if amount >= wo:  # masked away entirely (also: >=64 is UB)
                return zeros()
            if amount == 0:
                return emit(sl("a"), w("a") > wo)
            shift = consts.scalar(amount, f"A{amount}", uses_ev)
            need = wo < VECTOR_WORD and w("a") + amount > wo
            return emit(f"{sl('a')} << {shift}", need)
        if kind == "shr":
            amount = int(cell.params["amount"])
            if amount >= w("a"):
                return zeros()
            if amount == 0:
                return emit(sl("a"), w("a") > wo)
            shift = consts.scalar(amount, f"A{amount}", uses_ev)
            return emit(f"{sl('a')} >> {shift}", w("a") - amount > wo)
        if kind == "slice":
            lsb = int(cell.params["lsb"])
            if lsb >= w("a"):
                return zeros()
            if lsb == 0:
                return emit(sl("a"), w("a") > wo)
            shift = consts.scalar(lsb, f"A{lsb}", uses_ev)
            return emit(f"{sl('a')} >> {shift}", w("a") - lsb > wo)
        if kind == "concat":
            wb = w("b")
            if wb >= wo:  # a's bits are entirely above the out mask
                return emit(sl("b"), wb > wo)
            shift = consts.scalar(wb, f"A{wb}", uses_ev)
            need = wo < VECTOR_WORD and w("a") + wb > wo
            return emit(f"({sl('a')} << {shift}) | {sl('b')}", need)
        raise NetlistError(f"cannot vector-compile cell kind {kind!r}")

    # -- numpy flavor: multi-word columns for wide nets -----------------
    #
    # A net wider than one machine word is a Python list of ceil(w/64)
    # uint64 columns (little-endian words, clean: the top word carries
    # only the residual bits).  The structural kinds below stay fully
    # vectorized at the word level; only genuinely multi-word arithmetic
    # (add/sub/mul/div/mod/lt on wide values) drops to the per-lane
    # fallback, which converts through ``_wpack``/``_wunpack``.

    WIDE_VECTOR_KINDS = frozenset(
        ("const", "slice", "shr", "shl", "concat",
         "and", "or", "xor", "not", "mux", "eq")
    )

    def comb_numpy_wide(cell: Cell) -> List[str]:
        pins, kind = cell.pins, cell.kind
        out = pins["out"]
        so = slot[out.name]
        wo = out.width
        nwo = _nwords(wo)
        uses_ev.add("_np")

        def word(pin: str, index: int) -> str:
            net = pins[pin]
            base = f"s[{slot[net.name]}]"
            return f"{base}[{index}]" if wide(net) else base

        def window(pin: str, pos: int) -> Optional[str]:
            """Bits ``[pos, pos + 64)`` of the pin's clean value (a
            negative ``pos`` places the value upward); None == zero."""
            wa = pins[pin].width
            na = _nwords(wa)
            quot, sh = divmod(pos, VECTOR_WORD)
            terms = []
            if 0 <= quot < na:
                term = word(pin, quot)
                if sh:
                    shift = consts.scalar(sh, f"A{sh}", uses_ev)
                    term = f"({term} >> {shift})"
                terms.append(term)
            if sh and 0 <= quot + 1 < na:
                # uint64 << wraps, which is exactly window truncation.
                up = consts.scalar(
                    VECTOR_WORD - sh, f"A{VECTOR_WORD - sh}", uses_ev
                )
                terms.append(f"({word(pin, quot + 1)} << {up})")
            if not terms:
                return None
            return " | ".join(terms)

        def finish(words: List[Optional[str]], src_top: int) -> List[str]:
            """Assemble out words; mask the top word when the source can
            carry bits past ``wo`` inside it (word windows already
            truncate at word granularity, so ``wo % 64 == 0`` is free).
            """
            residual = wo % VECTOR_WORD
            if src_top > wo and residual and words[-1] is not None:
                mask = consts.mask(residual, uses_ev)
                words[-1] = f"({words[-1]}) & {mask}"
            exprs = [
                expr if expr is not None else consts.zeros(uses_ev)
                for expr in words
            ]
            if not wide(out):
                return [f"    s[{so}] = {exprs[0]}"]
            return [f"    s[{so}] = [{', '.join(exprs)}]"]

        def w(pin: str) -> int:
            return pins[pin].width

        if kind == "const":
            value = int(cell.params["value"]) & ((1 << wo) - 1)
            return [
                f"    s[{so}] = "
                f"{consts.wide_words(value, nwo, f'W{so}', uses_ev)}"
            ]
        if kind in ("slice", "shr"):
            offset = int(
                cell.params["lsb" if kind == "slice" else "amount"]
            )
            words = [
                window("a", offset + VECTOR_WORD * j) for j in range(nwo)
            ]
            return finish(words, w("a") - offset)
        if kind == "shl":
            amount = int(cell.params["amount"])
            words = [
                window("a", VECTOR_WORD * j - amount) for j in range(nwo)
            ]
            return finish(words, w("a") + amount)
        if kind == "concat":
            wb = w("b")
            words = []
            for j in range(nwo):
                parts = [
                    part
                    for part in (
                        window("a", VECTOR_WORD * j - wb),
                        window("b", VECTOR_WORD * j),
                    )
                    if part is not None
                ]
                words.append(" | ".join(parts) if parts else None)
            return finish(words, w("a") + wb)
        if kind in ("and", "or", "xor"):
            op = {"and": "&", "or": "|", "xor": "^"}[kind]
            words = []
            for j in range(nwo):
                a_word = window("a", VECTOR_WORD * j)
                b_word = window("b", VECTOR_WORD * j)
                if a_word is not None and b_word is not None:
                    words.append(f"{a_word} {op} {b_word}")
                elif kind == "and":
                    words.append(None)  # missing operand word == zero
                else:
                    words.append(a_word if a_word is not None else b_word)
            src_top = (
                min(w("a"), w("b")) if kind == "and" else max(w("a"), w("b"))
            )
            return finish(words, src_top)
        if kind == "not":
            flip_width = max(w("a"), wo)
            na = _nwords(w("a"))
            words: List[Optional[str]] = []
            for j in range(nwo):
                flip = (
                    ((1 << flip_width) - 1) >> (VECTOR_WORD * j)
                ) & _WORD_MASK
                a_word = window("a", VECTOR_WORD * j)
                if a_word is None:
                    words.append(
                        consts.column(flip, f"V{so}w{j}", uses_ev)
                        if flip else None
                    )
                elif flip:
                    scalar = consts.scalar(flip, f"F{flip:x}", uses_ev)
                    words.append(f"{a_word} ^ {scalar}")
                else:
                    words.append(a_word)
            return finish(words, flip_width)
        if kind == "mux":
            sel = pins["sel"]
            cond = word("sel", 0)
            if sel.width > 1:
                cond = f"{cond} & {consts.scalar(1, 'K1', uses_ev)}"
            zeros = consts.zeros(uses_ev)
            words = []
            for j in range(nwo):
                a_word = window("a", VECTOR_WORD * j) or zeros
                b_word = window("b", VECTOR_WORD * j) or zeros
                words.append(f"_np.where({cond}, {a_word}, {b_word})")
            return finish(words, max(w("a"), w("b")))
        if kind == "eq":
            uses_ev.add("_U64")
            zero = consts.scalar(0, "K0", uses_ev)
            terms = []
            for j in range(max(_nwords(w("a")), _nwords(w("b")))):
                a_word = window("a", VECTOR_WORD * j)
                b_word = window("b", VECTOR_WORD * j)
                if a_word is None and b_word is None:
                    continue
                if a_word is None:
                    terms.append(f"({b_word} == {zero})")
                elif b_word is None:
                    terms.append(f"({a_word} == {zero})")
                else:
                    terms.append(f"({a_word} == {b_word})")
            joined = " & ".join(terms) if terms else "True"
            flag = f"({joined}).astype(_U64)"
            if not wide(out):
                return [f"    s[{so}] = {flag}"]
            zeros = consts.zeros(uses_ev)
            exprs = [flag] + [zeros] * (nwo - 1)
            return [f"    s[{so}] = [{', '.join(exprs)}]"]
        raise NetlistError(
            f"cannot word-vectorize cell kind {kind!r}"
        )  # pragma: no cover - dispatch guards membership

    # -- per-lane loop (wide pins, and the whole stdlib flavor) ---------

    def comb_lanes(cell: Cell) -> List[str]:
        pins, kind = cell.pins, cell.kind
        out = pins["out"]
        so = slot[out.name]
        wo = out.width
        omask = (1 << wo) - 1
        wide_out = wide(out)

        def wr(listcomp: str) -> List[str]:
            if wide_out and numpy_flavor:
                return [
                    f"    s[{so}] = "
                    f"{pk_wide(listcomp, _nwords(wo), uses_ev)}"
                ]
            if wide_out:
                return [f"    s[{so}] = {listcomp}"]
            return [f"    s[{so}] = {pk(listcomp, uses_ev)}"]

        if kind == "const":
            value = int(cell.params["value"]) & omask
            if wide_out and numpy_flavor:
                return [
                    f"    s[{so}] = "
                    f"{consts.wide_words(value, _nwords(wo), f'W{so}', uses_ev)}"
                ]
            if wide_out:
                return [
                    f"    s[{so}] = "
                    f"{consts.wide_column(value, f'W{so}', uses_ev)}"
                ]
            return [
                f"    s[{so}] = {consts.column(value, f'V{so}', uses_ev)}"
            ]
        if kind == "mux":
            return wr(
                f"[(_p if _c & 1 else _q) & {omask} for _c, _p, _q in "
                f"zip({lanes_of(pins['sel'], uses_ev)},"
                f" {lanes_of(pins['a'], uses_ev)},"
                f" {lanes_of(pins['b'], uses_ev)})]"
            )
        binary = {
            "add": f"(_p + _q) & {omask}",
            "sub": f"(_p - _q) & {omask}",
            "mul": f"(_p * _q) & {omask}",
            "div": f"(_p // _q if _q else 0) & {omask}",
            "mod": f"(_p % _q if _q else 0) & {omask}",
            "and": f"(_p & _q) & {omask}",
            "or": f"(_p | _q) & {omask}",
            "xor": f"(_p ^ _q) & {omask}",
            "eq": "1 if _p == _q else 0",
            "lt": "1 if _p < _q else 0",
        }
        if kind == "concat":
            binary["concat"] = (
                f"((_p << {pins['b'].width}) | _q) & {omask}"
            )
        if kind in binary:
            return wr(
                f"[{binary[kind]} for _p, _q in "
                f"zip({lanes_of(pins['a'], uses_ev)},"
                f" {lanes_of(pins['b'], uses_ev)})]"
            )
        if kind == "slice" and int(cell.params["lsb"]) == 0 \
                and pins["a"].width <= wo and wide(pins["a"]) == wide_out:
            return [f"    s[{so}] = s[{slot[pins['a'].name]}]"]
        unary = {
            "not": f"(~_p) & {omask}",
            "shl": f"(_p << {int(cell.params.get('amount', 0))}) & {omask}",
            "shr": f"(_p >> {int(cell.params.get('amount', 0))}) & {omask}",
            "slice": f"(_p >> {int(cell.params.get('lsb', 0))}) & {omask}",
        }
        if kind in unary:
            return wr(
                f"[{unary[kind]} for _p in "
                f"{lanes_of(pins['a'], uses_ev)}]"
            )
        raise NetlistError(f"cannot vector-compile cell kind {kind!r}")

    # -- sequential cells ----------------------------------------------

    reg_cells = sorted(
        name for name, c in module.cells.items() if c.kind in ("reg", "regen")
    )
    fifo_cells = sorted(
        name for name, c in module.cells.items() if c.kind == "fifo"
    )
    reg_index = {name: i for i, name in enumerate(reg_cells)}
    fifo_index = {name: i for i, name in enumerate(fifo_cells)}
    # Pre-masked to q width (the SWAR generator's convention): clean
    # columns are the packed invariant and the extra bits are
    # unobservable either way.
    reg_inits = [
        int(module.cells[name].params.get("init", 0))
        & ((1 << module.cells[name].pins["q"].width) - 1)
        for name in reg_cells
    ]
    fifo_depths = [
        int(module.cells[name].params.get("depth", 2)) for name in fifo_cells
    ]

    def reg_storage_wide(name: str) -> bool:
        pins = module.cells[name].pins
        return max(pins["d"].width, pins["q"].width) > VECTOR_WORD

    ev: List[str] = []
    for name in reg_cells:
        cell = module.cells[name]
        q, d = cell.pins["q"], cell.pins["d"]
        i = reg_index[name]
        sq = slot[q.name]
        qmask = (1 << q.width) - 1
        if not reg_storage_wide(name):
            if d.width <= q.width:
                ev.append(f"    s[{sq}] = r[{i}]")
            elif numpy_flavor:
                ev.append(
                    f"    s[{sq}] = r[{i}]"
                    f" & {consts.mask(q.width, uses_ev)}"
                )
            else:
                ev.append(
                    f"    s[{sq}] = "
                    f"{pk(f'[_v & {qmask} for _v in r[{i}]]', uses_ev)}"
                )
        elif numpy_flavor:
            # Wide storage is a multi-word column list clean to
            # max(d, q) width; evaluate extracts q's words.
            max_w = max(d.width, q.width)
            if wide(q):
                nq = _nwords(q.width)
                words = [f"r[{i}][{j}]" for j in range(nq)]
                residual = q.width % VECTOR_WORD
                if max_w > q.width and residual:
                    mask = consts.mask(residual, uses_ev)
                    words[-1] = f"{words[-1]} & {mask}"
                ev.append(f"    s[{sq}] = [{', '.join(words)}]")
            elif q.width == VECTOR_WORD:
                ev.append(f"    s[{sq}] = r[{i}][0]")
            else:
                mask = consts.mask(q.width, uses_ev)
                ev.append(f"    s[{sq}] = r[{i}][0] & {mask}")
        elif wide(q):
            if d.width > q.width:
                ev.append(
                    f"    s[{sq}] = [_v & {qmask} for _v in r[{i}]]"
                )
            else:
                ev.append(f"    s[{sq}] = r[{i}]")
        else:  # wide storage latching into a packed q
            ev.append(
                f"    s[{sq}] = "
                f"{pk(f'[_v & {qmask} for _v in r[{i}]]', uses_ev)}"
            )
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        index = fifo_index[name]
        od = pins["out_data"]
        od_mask = (1 << od.width) - 1
        depth = fifo_depths[index]
        ev.append(f"    _q = f[{index}]")
        ev.append(
            f"    s[{slot[pins['in_ready'].name]}] = "
            f"{pk(f'[1 if len(_fq) < {depth} else 0 for _fq in _q]', uses_ev)}"
        )
        ev.append(
            f"    s[{slot[pins['out_valid'].name]}] = "
            f"{pk('[1 if _fq else 0 for _fq in _q]', uses_ev)}"
        )
        head = f"[(_fq[0] & {od_mask}) if _fq else 0 for _fq in _q]"
        if wide(od) and numpy_flavor:
            ev.append(
                f"    s[{slot[od.name]}] = "
                f"{pk_wide(head, _nwords(od.width), uses_ev)}"
            )
        elif wide(od):
            ev.append(f"    s[{slot[od.name]}] = {head}")
        else:
            ev.append(f"    s[{slot[od.name]}] = {pk(head, uses_ev)}")
    for cell in comb_topo_order(module):
        pins = cell.pins
        if numpy_flavor and all(
            pin.width <= VECTOR_WORD for pin in pins.values()
        ):
            ev.extend(comb_numpy_packed(cell))
        elif numpy_flavor and cell.kind in WIDE_VECTOR_KINDS:
            ev.extend(comb_numpy_wide(cell))
        else:
            ev.extend(comb_lanes(cell))
    if not ev:
        ev.append("    pass")

    def storage_words(name: str) -> int:
        pins = module.cells[name].pins
        return _nwords(max(pins["d"].width, pins["q"].width))

    def d_word(d, index: int, uses: set) -> str:
        """Word ``index`` of the latched d value (numpy wide storage)."""
        sd = slot[d.name]
        if wide(d):
            if index < _nwords(d.width):
                return f"s[{sd}][{index}]"
        elif index == 0:
            return f"s[{sd}]"
        return consts.zeros(uses)

    lt: List[str] = []
    for name in reg_cells:
        cell = module.cells[name]
        d = cell.pins["d"]
        i = reg_index[name]
        storage_wide = reg_storage_wide(name)
        if cell.kind == "reg":
            if not storage_wide:
                lt.append(f"    r[{i}] = s[{slot[d.name]}]")
            elif numpy_flavor:
                words = [
                    d_word(d, j, uses_lt) for j in range(storage_words(name))
                ]
                lt.append(f"    r[{i}] = [{', '.join(words)}]")
            elif wide(d):
                lt.append(f"    r[{i}] = s[{slot[d.name]}]")
            else:
                lt.append(f"    r[{i}] = list(s[{slot[d.name]}])")
        else:  # regen
            en = cell.pins["en"]
            if storage_wide and numpy_flavor:
                uses_lt.add("_np")
                cond = f"s[{slot[en.name]}]"
                if en.width > 1:
                    cond = f"{cond} & {consts.scalar(1, 'K1', uses_lt)}"
                lt.append(f"    _c = {cond}")
                words = [
                    f"_np.where(_c, {d_word(d, j, uses_lt)}, r[{i}][{j}])"
                    for j in range(storage_words(name))
                ]
                lt.append(f"    r[{i}] = [{', '.join(words)}]")
            elif not storage_wide and numpy_flavor:
                uses_lt.add("_np")
                cond = f"s[{slot[en.name]}]"
                if en.width > 1:
                    cond = f"{cond} & {consts.scalar(1, 'K1', uses_lt)}"
                lt.append(
                    f"    r[{i}] = _np.where({cond}, "
                    f"s[{slot[d.name]}], r[{i}])"
                )
            else:
                blend = (
                    f"[(_d if _e & 1 else _r) for _e, _d, _r in "
                    f"zip({lanes_of(en, uses_lt)},"
                    f" {lanes_of(d, uses_lt)}, r[{i}])]"
                )
                if storage_wide:
                    lt.append(f"    r[{i}] = {blend}")
                else:
                    lt.append(f"    r[{i}] = {pk(blend, uses_lt)}")
    for name in fifo_cells:
        cell = module.cells[name]
        pins = cell.pins
        lt.append(
            f"    for _fq, _to, _vo, _vi, _ri, _dv in zip("
            f"f[{fifo_index[name]}], "
            f"{lanes_of(pins['out_ready'], uses_lt)}, "
            f"{lanes_of(pins['out_valid'], uses_lt)}, "
            f"{lanes_of(pins['in_valid'], uses_lt)}, "
            f"{lanes_of(pins['in_ready'], uses_lt)}, "
            f"{lanes_of(pins['in_data'], uses_lt)}):"
        )
        lt.append("        if _fq and _to & _vo & 1:")
        lt.append("            _fq.popleft()")
        lt.append("        if _vi & _ri & 1:")
        lt.append("            _fq.append(_dv)")
    if not lt:
        lt.append("    pass")

    # -- assemble -------------------------------------------------------
    prelude: List[str] = []
    if numpy_flavor:
        prelude += ["import numpy as _np", "", "_U64 = _np.uint64"]
    else:
        prelude += ["from array import array as _array"]
    prelude.append(f"_LANES = {lanes}")
    prelude += consts.defs
    helper_names = sorted(div_helpers)
    if "_vdiv" in div_helpers:
        prelude += [
            "",
            "",
            "def _vdiv(a, b, _Z0=_np.uint64(0)):",
            "    out = _np.zeros_like(a)",
            "    _np.floor_divide(a, b, out=out, where=b != _Z0)",
            "    return out",
        ]
    if "_vmod" in div_helpers:
        prelude += [
            "",
            "",
            "def _vmod(a, b, _Z0=_np.uint64(0)):",
            "    out = _np.zeros_like(a)",
            "    _np.remainder(a, b, out=out, where=b != _Z0)",
            "    return out",
        ]
    if "_wpack" in div_helpers:
        prelude += [
            "",
            "",
            "def _wpack(vals, n):",
            "    return [_np.array([(v >> (64 * i)) & "
            f"{hex(_WORD_MASK)} for v in vals], _U64)",
            "            for i in range(n)]",
        ]
    if "_wunpack" in div_helpers:
        prelude += [
            "",
            "",
            "def _wunpack(words):",
            "    out = words[0].tolist()",
            "    for i in range(1, len(words)):",
            "        shift = 64 * i",
            "        out = [o | (v << shift)",
            "               for o, v in zip(out, words[i].tolist())]",
            "    return out",
        ]

    def signature(uses: set) -> str:
        extras = sorted(uses - set(helper_names)) + [
            h for h in helper_names if h in uses
        ]
        defaults = "".join(f", {n}={n}" for n in extras)
        return f"(s, r, f{defaults}):"

    source = "\n".join(
        prelude
        + ["", "", f"def _evaluate{signature(uses_ev)}"]
        + ev
        + ["", "", f"def _latch{signature(uses_lt)}"]
        + lt
    ) + "\n"
    return source, reg_cells, reg_inits, fifo_cells, fifo_depths


class VectorNetlist:
    """One netlist's vector step code plus its layout (memo-shared)."""

    __slots__ = (
        "structural_hash",
        "slot_of",
        "n_slots",
        "reg_cells",
        "reg_inits",
        "fifo_cells",
        "fifo_depths",
        "evaluate",
        "latch",
        "source",
        "compile_seconds",
        "lanes",
        "flavor",
        "from_store",
    )

    def __init__(
        self,
        structural_hash: str,
        slot_of: Dict[str, int],
        reg_cells: List[str],
        reg_inits: List[int],
        fifo_cells: List[str],
        fifo_depths: List[int],
        evaluate,
        latch,
        source: str,
        compile_seconds: float,
        lanes: int,
        flavor: str,
        from_store: bool = False,
    ):
        self.structural_hash = structural_hash
        self.slot_of = slot_of
        self.n_slots = len(slot_of)
        self.reg_cells = reg_cells
        self.reg_inits = reg_inits
        self.fifo_cells = fifo_cells
        self.fifo_depths = fifo_depths
        self.evaluate = evaluate
        self.latch = latch
        self.source = source
        self.compile_seconds = compile_seconds
        self.lanes = lanes
        self.flavor = flavor
        self.from_store = from_store

    def __repr__(self):
        return (
            f"VectorNetlist({self.structural_hash}, {self.n_slots} slots, "
            f"lanes={self.lanes}, flavor={self.flavor})"
        )


#: (structural hash, lanes, flavor) → VectorNetlist, process-wide.
_VMEMO: Dict[Tuple[str, int, str], VectorNetlist] = {}
_VMEMO_LOCK = threading.Lock()


def _generate_vector_payload(
    module: Module, structural: str, lanes: int, flavor: str
) -> Dict:
    slot = {name: index for index, name in enumerate(sorted(module.nets))}
    (source, reg_cells, reg_inits,
     fifo_cells, fifo_depths) = _generate_vector_source(
        module, slot, lanes, flavor
    )
    return {
        "structural_hash": structural,
        "backend": vector_backend_tag(flavor),
        "flavor": flavor,
        "lanes": lanes,
        "stride": 0,
        "source": source,
        "slot_of": slot,
        "reg_cells": reg_cells,
        "reg_inits": reg_inits,
        "fifo_cells": fifo_cells,
        "fifo_depths": fifo_depths,
    }


def _materialize_vector(
    payload: Dict, module_name: str, start: float, from_store: bool
) -> VectorNetlist:
    namespace: Dict[str, object] = {}
    code = compile(
        payload["source"],
        f"<vector:{module_name}:{payload['structural_hash']}"
        f":x{payload['lanes']}:{payload['flavor']}>",
        "exec",
    )
    exec(code, namespace)
    return VectorNetlist(
        payload["structural_hash"],
        payload["slot_of"],
        payload["reg_cells"],
        payload["reg_inits"],
        payload["fifo_cells"],
        payload["fifo_depths"],
        namespace["_evaluate"],
        namespace["_latch"],
        payload["source"],
        time.perf_counter() - start,
        lanes=payload["lanes"],
        flavor=payload["flavor"],
        from_store=from_store,
    )


def compile_vector_netlist(
    module: Module,
    lanes: int,
    flavor: Optional[str] = None,
    store=None,
) -> VectorNetlist:
    """Compile a flat module to lane-column step code (memoized).

    ``flavor`` resolves through :func:`vector_flavor`; ``store`` is the
    same duck-typed codegen store ``compile_netlist`` takes (``load``
    gains the backend tag argument: ``load(structural_hash, lanes,
    backend)``), so vector kernels share the persistent ``codegen``
    pseudo-stage with the scalar and SWAR generators.
    """
    from .compile import valid_codegen_payload

    lanes = int(lanes)
    if lanes < 1:
        raise NetlistError(f"lanes must be >= 1, got {lanes}")
    flavor = vector_flavor(flavor)
    backend = vector_backend_tag(flavor)
    structural = module.structural_hash()
    key = (structural, lanes, flavor)
    with _VMEMO_LOCK:
        cached = _VMEMO.get(key)
    if cached is not None:
        return cached
    start = time.perf_counter()
    payload = None
    if store is not None:
        payload = store.load(structural, lanes, backend)
        if payload is not None and not valid_codegen_payload(
            payload, structural, lanes, backend
        ):
            payload = None
    loaded = payload is not None
    if payload is None:
        payload = _generate_vector_payload(module, structural, lanes, flavor)
    compiled = _materialize_vector(payload, module.name, start, loaded)
    if store is not None and not loaded:
        store.save(payload)
    with _VMEMO_LOCK:
        return _VMEMO.setdefault(key, compiled)


def clear_vector_memo() -> None:
    """Drop every memoized vector compilation (mainly for tests)."""
    with _VMEMO_LOCK:
        _VMEMO.clear()


class VectorCompiledSimulator:
    """K stimulus lanes behind word-packed column step functions.

    The vectorized sibling of
    :class:`~repro.rtl.compile.BatchedCompiledSimulator`, with the same
    surface — ``poke`` takes ``{port: [v0..vK-1]}``, ``peek`` returns
    per-lane lists, ``step``/``run`` exchange one dict per lane — and
    the same contract: lanes never interact, outputs are bit-identical
    to K independent single-lane runs (the vector
    :func:`~repro.rtl.compile.differential_check` gate asserts it).
    Unlike SWAR, throughput keeps scaling to thousands of lanes because
    each kernel touches a contiguous column at fixed per-op overhead.
    """

    def __init__(
        self,
        module: Module,
        lanes: int,
        codegen_store=None,
        flavor: Optional[str] = None,
    ):
        from .compile import _flattened, _mask_literal

        self.module = _flattened(module)
        self.lanes = int(lanes)
        if self.lanes < 1:
            raise NetlistError(f"lanes must be >= 1, got {lanes!r}")
        self.program = compile_vector_netlist(
            self.module, self.lanes, flavor=flavor, store=codegen_store
        )
        self.flavor = self.program.flavor
        np = _numpy() if self.flavor == "numpy" else None
        self._np = np
        slot_of = self.program.slot_of
        # slot index → word count, for every net wider than one word.
        # In the numpy flavor a wide slot holds that many uint64
        # columns; in the stdlib flavor it stays a per-lane int list.
        self._wide_slots: Dict[int, int] = {
            slot_of[net.name]: _nwords(net.width)
            for net in self.module.nets.values()
            if net.width > VECTOR_WORD
        }
        if np is not None:
            zeros = np.zeros(self.lanes, np.uint64)
        else:
            from array import array

            zeros = array("Q", [0]) * self.lanes
        # Columns are rebound, never mutated, so every packed slot can
        # share one zero column until first written (wide numpy slots
        # likewise share it per word).
        self._slots: List[object] = []
        for index in range(self.program.n_slots):
            n_words = self._wide_slots.get(index)
            if n_words is None:
                self._slots.append(zeros)
            elif np is not None:
                self._slots.append([zeros] * n_words)
            else:
                self._slots.append([0] * self.lanes)
        self._regs: List[object] = []
        for name, init in zip(self.program.reg_cells, self.program.reg_inits):
            pins = self.module.cells[name].pins
            storage_width = max(pins["d"].width, pins["q"].width)
            if storage_width > VECTOR_WORD and np is not None:
                self._regs.append([
                    np.full(
                        self.lanes,
                        np.uint64(
                            (init >> (VECTOR_WORD * word)) & _WORD_MASK
                        ),
                    )
                    for word in range(_nwords(storage_width))
                ])
            elif storage_width > VECTOR_WORD:
                self._regs.append([init] * self.lanes)
            elif np is not None:
                self._regs.append(np.full(self.lanes, np.uint64(init)))
            else:
                from array import array

                self._regs.append(array("Q", [init]) * self.lanes)
        self._fifos: List[List[deque]] = [
            [deque() for _ in range(self.lanes)]
            for _ in self.program.fifo_depths
        ]
        self._evaluate = self.program.evaluate
        self._latch = self.program.latch
        self._input_slots = {
            name: (slot_of[net.name], _mask_literal(net.width))
            for name, net in self.module.inputs()
        }
        self._output_slots = [
            (
                name,
                slot_of[net.name],
                slot_of[net.name] in self._wide_slots,
            )
            for name, net in self.module.outputs()
        ]
        self.cycle = 0

    # ------------------------------------------------------------------

    def _column(self, values: Sequence[int], mask: int):
        """A fresh packed column of masked lane values."""
        if self._np is not None:
            return self._np.array(
                [int(value) & mask for value in values], self._np.uint64
            )
        from array import array

        return array("Q", [int(value) & mask for value in values])

    def _pack_wide(self, values: Sequence[int], mask: int, n_words: int):
        """Masked lane ints → little-endian uint64 word columns."""
        np = self._np
        masked = [int(value) & mask for value in values]
        return [
            np.array(
                [(value >> (VECTOR_WORD * word)) & _WORD_MASK
                 for value in masked],
                np.uint64,
            )
            for word in range(n_words)
        ]

    def _unpack_wide(self, words) -> List[int]:
        """Word columns back to per-lane Python ints."""
        out = words[0].tolist()
        for word, column in enumerate(words[1:], 1):
            shift = VECTOR_WORD * word
            for lane, piece in enumerate(column.tolist()):
                if piece:
                    out[lane] |= piece << shift
        return out

    def _lanes_of(self, value, is_wide: bool):
        """Per-lane Python ints of one slot's current column."""
        if is_wide:
            if self._np is not None:
                return self._unpack_wide(value)
            return value
        if self._np is not None:
            return value.tolist()
        return value  # array('Q') indexes to plain ints already

    def poke(self, inputs: Dict[str, Sequence[int]]) -> None:
        """Drive ports with per-lane value lists (one value per lane)."""
        slots = self._slots
        for name, values in inputs.items():
            entry = self._input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            if len(values) != self.lanes:
                raise NetlistError(
                    f"{self.module.name}: port {name!r} got {len(values)} "
                    f"values for {self.lanes} lanes"
                )
            index, mask = entry
            n_words = self._wide_slots.get(index)
            if n_words is None:
                slots[index] = self._column(values, mask)
            elif self._np is not None:
                slots[index] = self._pack_wide(values, mask, n_words)
            else:
                slots[index] = [int(value) & mask for value in values]

    def _poke_vectors(self, vectors: Sequence[Dict[str, int]]) -> None:
        """Per-lane input dicts; lanes may drive different port subsets
        (a port a lane omits keeps that lane's previous value)."""
        if len(vectors) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: got {len(vectors)} input vectors "
                f"for {self.lanes} lanes"
            )
        slots = self._slots
        first = vectors[0]
        uniform = all(vector.keys() == first.keys() for vector in vectors)
        if uniform:
            for name in first:
                entry = self._input_slots.get(name)
                if entry is None:
                    raise NetlistError(
                        f"{self.module.name}: no input port {name!r}"
                    )
                index, mask = entry
                n_words = self._wide_slots.get(index)
                if n_words is None:
                    slots[index] = self._column(
                        [vector[name] for vector in vectors], mask
                    )
                elif self._np is not None:
                    slots[index] = self._pack_wide(
                        [vector[name] for vector in vectors], mask, n_words
                    )
                else:
                    slots[index] = [
                        int(vector[name]) & mask for vector in vectors
                    ]
            return
        names = set(first)
        for vector in vectors[1:]:
            names.update(vector)
        for name in names:
            entry = self._input_slots.get(name)
            if entry is None:
                raise NetlistError(
                    f"{self.module.name}: no input port {name!r}"
                )
            index, mask = entry
            n_words = self._wide_slots.get(index)
            old = slots[index]
            if n_words is not None and self._np is not None:
                old = self._unpack_wide(old)
            merged = [
                (int(vector[name]) & mask)
                if name in vector
                else int(old[lane])
                for lane, vector in enumerate(vectors)
            ]
            if n_words is None:
                slots[index] = self._column(merged, mask)
            elif self._np is not None:
                slots[index] = self._pack_wide(merged, mask, n_words)
            else:
                slots[index] = merged

    def evaluate(self) -> None:
        self._evaluate(self._slots, self._regs, self._fifos)

    def peek(self, name: str) -> List[int]:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self._unpack_slot(self.program.slot_of[net.name])

    def peek_net(self, net_name: str) -> List[int]:
        index = self.program.slot_of.get(net_name)
        if index is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        return self._unpack_slot(index)

    def snapshot(self, names=None) -> Dict[str, Tuple[int, ...]]:
        """Per-lane value tuples of the named nets (profile hook)."""
        slot_of = self.program.slot_of
        if names is None:
            names = slot_of
        return {
            name: tuple(self._unpack_slot(slot_of[name])) for name in names
        }

    def _unpack_slot(self, index: int) -> List[int]:
        value = self._slots[index]
        if index in self._wide_slots:
            if self._np is not None:
                return self._unpack_wide(value)
            return list(value)
        if self._np is not None:
            return value.tolist()
        return list(value)

    def tick(self) -> None:
        self._latch(self._slots, self._regs, self._fifos)
        self.cycle += 1

    def step(
        self, vectors: Optional[Sequence[Dict[str, int]]] = None
    ) -> List[Dict[str, int]]:
        """One cycle for every lane; returns one output dict per lane."""
        if vectors:
            self._poke_vectors(vectors)
        slots = self._slots
        self._evaluate(slots, self._regs, self._fifos)
        columns = [
            (name, self._lanes_of(slots[index], is_wide))
            for name, index, is_wide in self._output_slots
        ]
        outputs = [
            {name: column[lane] for name, column in columns}
            for lane in range(self.lanes)
        ]
        self._latch(slots, self._regs, self._fifos)
        self.cycle += 1
        return outputs

    def run(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Feed K equal-length streams; returns K per-lane traces."""
        streams = [list(stream) for stream in input_streams]
        if len(streams) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: got {len(streams)} streams for "
                f"{self.lanes} lanes"
            )
        lengths = {len(stream) for stream in streams}
        if len(lengths) > 1:
            raise NetlistError(
                f"{self.module.name}: lane streams differ in length: "
                f"{sorted(lengths)}"
            )
        traces: List[List[Dict[str, int]]] = [[] for _ in streams]
        step = self.step
        for vectors in zip(*streams):
            for trace, outputs in zip(traces, step(vectors)):
                trace.append(outputs)
        return traces

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        """Seeded per-lane stimulus (lane seeds via derive_lane_seed)."""
        return self.run(
            random_stimulus_batch(self.module, cycles, self.lanes, seed, bias)
        )

    def run_batch(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Alias for :meth:`run` (the uniform batch surface)."""
        return self.run(input_streams)

    def run_random_batch(
        self, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        if int(lanes) != self.lanes:
            raise NetlistError(
                f"{self.module.name}: simulator compiled for {self.lanes} "
                f"lanes, asked to run {lanes}"
            )
        return self.run_random(cycles, seed, bias)


# Register with the backend vocabulary on import (repro.rtl imports this
# module unconditionally, so ``--sim-backend vector`` is always a valid
# spelling; flavor availability is checked at compile time instead).
def _register() -> None:
    from . import compile as _compile

    _compile.SIM_BACKENDS["vector"] = VectorCompiledSimulator
    _compile.SIM_BACKEND_VERSIONS["vector"] = 1


_register()

"""RTL substrate: netlists, optimization passes, cycle-accurate
simulation (interpreted and compiled backends), Verilog emission."""

from .netlist import (
    Cell,
    COMBINATIONAL_KINDS,
    Module,
    Net,
    NetlistError,
    SEQUENTIAL_KINDS,
    flatten,
)
from .simulate import Simulator, eval_comb_cell, random_stimulus
from .compile import (
    SIM_BACKENDS,
    SIM_BACKEND_VERSIONS,
    backend_fingerprint,
    CompiledNetlist,
    CompiledSimulator,
    SimBackend,
    compile_netlist,
    differential_check,
    make_simulator,
    resolve_backend,
)
from .verilog import emit_verilog

__all__ = [
    "Cell",
    "COMBINATIONAL_KINDS",
    "CompiledNetlist",
    "CompiledSimulator",
    "Module",
    "Net",
    "NetlistError",
    "SEQUENTIAL_KINDS",
    "SIM_BACKENDS",
    "SIM_BACKEND_VERSIONS",
    "SimBackend",
    "Simulator",
    "backend_fingerprint",
    "compile_netlist",
    "differential_check",
    "emit_verilog",
    "eval_comb_cell",
    "make_simulator",
    "random_stimulus",
    "resolve_backend",
    "flatten",
]

"""RTL substrate: netlists, cycle-accurate simulation, Verilog emission."""

from .netlist import (
    Cell,
    COMBINATIONAL_KINDS,
    Module,
    Net,
    NetlistError,
    SEQUENTIAL_KINDS,
    flatten,
)
from .simulate import Simulator
from .verilog import emit_verilog

__all__ = [
    "Cell",
    "COMBINATIONAL_KINDS",
    "Module",
    "Net",
    "NetlistError",
    "SEQUENTIAL_KINDS",
    "flatten",
    "Simulator",
    "emit_verilog",
]

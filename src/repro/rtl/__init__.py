"""RTL substrate: netlists, optimization passes, cycle-accurate
simulation, Verilog emission."""

from .netlist import (
    Cell,
    COMBINATIONAL_KINDS,
    Module,
    Net,
    NetlistError,
    SEQUENTIAL_KINDS,
    flatten,
)
from .simulate import Simulator, eval_comb_cell, random_stimulus
from .verilog import emit_verilog

__all__ = [
    "Cell",
    "COMBINATIONAL_KINDS",
    "Module",
    "Net",
    "NetlistError",
    "SEQUENTIAL_KINDS",
    "flatten",
    "Simulator",
    "emit_verilog",
    "eval_comb_cell",
    "random_stimulus",
]

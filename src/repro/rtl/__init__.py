"""RTL substrate: netlists, optimization passes, cycle-accurate
simulation (interpreted and compiled backends), Verilog emission."""

from .netlist import (
    Cell,
    COMBINATIONAL_KINDS,
    Module,
    Net,
    NetlistError,
    SEQUENTIAL_KINDS,
    flatten,
)
from .simulate import (
    Simulator,
    derive_lane_seed,
    eval_comb_cell,
    random_stimulus,
    random_stimulus_batch,
)
from .compile import (
    CODEGEN_VERSION,
    SIM_BACKENDS,
    SIM_BACKEND_VERSIONS,
    backend_fingerprint,
    batched_stride,
    BatchedCompiledSimulator,
    CompiledNetlist,
    CompiledSimulator,
    SimBackend,
    clear_compile_memo,
    compile_memo_size,
    compile_netlist,
    differential_check,
    make_simulator,
    resolve_backend,
)
from .verilog import emit_verilog

__all__ = [
    "BatchedCompiledSimulator",
    "CODEGEN_VERSION",
    "Cell",
    "COMBINATIONAL_KINDS",
    "CompiledNetlist",
    "CompiledSimulator",
    "Module",
    "Net",
    "NetlistError",
    "SEQUENTIAL_KINDS",
    "SIM_BACKENDS",
    "SIM_BACKEND_VERSIONS",
    "SimBackend",
    "Simulator",
    "backend_fingerprint",
    "batched_stride",
    "clear_compile_memo",
    "compile_memo_size",
    "compile_netlist",
    "derive_lane_seed",
    "differential_check",
    "emit_verilog",
    "eval_comb_cell",
    "make_simulator",
    "random_stimulus",
    "random_stimulus_batch",
    "resolve_backend",
    "flatten",
]

"""Cycle-accurate two-phase simulator for RTL netlists.

Each cycle:

1. input ports are poked;
2. combinational logic is evaluated in topological order;
3. outputs can be sampled;
4. on ``tick`` the sequential cells (registers, FIFOs) latch.

Combinational loops are rejected at construction.  Values are Python ints
masked to net widths (two's-complement-free: all arithmetic is unsigned
modulo 2^width, like Verilog's unsigned semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .netlist import Cell, Module, Net, NetlistError, flatten


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


class _FifoState:
    __slots__ = ("queue", "depth")

    def __init__(self, depth: int):
        self.queue: deque = deque()
        self.depth = depth


class Simulator:
    """Simulates a (hierarchical) module; hierarchy is flattened first."""

    def __init__(self, module: Module):
        self.module = flatten(module)
        self.module.validate()
        self.values: Dict[Net, int] = {
            net: 0 for net in self.module.nets.values()
        }
        self.reg_state: Dict[str, int] = {}
        self.fifo_state: Dict[str, _FifoState] = {}
        self.cycle = 0
        for cell in self.module.cells.values():
            if cell.kind in ("reg", "regen"):
                self.reg_state[cell.name] = int(cell.params.get("init", 0))
            elif cell.kind == "fifo":
                self.fifo_state[cell.name] = _FifoState(
                    int(cell.params.get("depth", 2))
                )
        self._comb_order = self._topological_comb_order()

    # ------------------------------------------------------------------

    def _topological_comb_order(self) -> List[Cell]:
        """Topologically sort combinational cells by net dependencies."""
        comb_cells = [
            c for c in self.module.cells.values() if not c.is_sequential()
        ]
        producers: Dict[Net, Cell] = {}
        for cell in comb_cells:
            for pin in cell.output_pins():
                net = cell.pins.get(pin)
                if net is not None:
                    producers[net] = cell
        # Edges: producer -> consumer when consumer reads producer's net.
        indegree: Dict[str, int] = {c.name: 0 for c in comb_cells}
        consumers: Dict[str, List[Cell]] = {c.name: [] for c in comb_cells}
        for cell in comb_cells:
            for pin in cell.input_pins():
                net = cell.pins.get(pin)
                producer = producers.get(net)
                if producer is not None and producer.name != cell.name:
                    consumers[producer.name].append(cell)
                    indegree[cell.name] += 1
        ready = deque(c for c in comb_cells if indegree[c.name] == 0)
        order: List[Cell] = []
        while ready:
            cell = ready.popleft()
            order.append(cell)
            for consumer in consumers[cell.name]:
                indegree[consumer.name] -= 1
                if indegree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(comb_cells):
            cyclic = [c.name for c in comb_cells if indegree[c.name] > 0]
            raise NetlistError(
                f"{self.module.name}: combinational loop through {cyclic[:5]}"
            )
        return order

    # ------------------------------------------------------------------

    def poke(self, inputs: Dict[str, int]) -> None:
        for name, value in inputs.items():
            net = self.module.ports.get(name)
            if net is None or self.module.port_dirs.get(name) != "in":
                raise NetlistError(f"{self.module.name}: no input port {name!r}")
            self.values[net] = _mask(int(value), net.width)

    def evaluate(self) -> None:
        """Drive sequential outputs from state, then evaluate comb logic."""
        values = self.values
        for cell in self.module.cells.values():
            if cell.kind in ("reg", "regen"):
                q = cell.pins["q"]
                values[q] = _mask(self.reg_state[cell.name], q.width)
            elif cell.kind == "fifo":
                self._drive_fifo_outputs(cell)
        for cell in self._comb_order:
            self._eval_comb(cell)

    def peek(self, name: str) -> int:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self.values[net]

    def peek_net(self, net_name: str) -> int:
        net = self.module.nets.get(net_name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        return self.values[net]

    def tick(self) -> None:
        """Clock edge: latch registers and FIFOs from current net values."""
        updates: Dict[str, int] = {}
        for cell in self.module.cells.values():
            if cell.kind == "reg":
                updates[cell.name] = self.values[cell.pins["d"]]
            elif cell.kind == "regen":
                if self.values[cell.pins["en"]] & 1:
                    updates[cell.name] = self.values[cell.pins["d"]]
            elif cell.kind == "fifo":
                self._tick_fifo(cell)
        self.reg_state.update(updates)
        self.cycle += 1

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Poke, evaluate, sample all outputs, then tick.  Returns outputs."""
        if inputs:
            self.poke(inputs)
        self.evaluate()
        outputs = {name: self.values[net] for name, net in self.module.outputs()}
        self.tick()
        return outputs

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]:
        """Feed a sequence of input maps; collect outputs for each cycle."""
        return [self.step(inputs) for inputs in input_stream]

    # ------------------------------------------------------------------

    def _drive_fifo_outputs(self, cell: Cell) -> None:
        state = self.fifo_state[cell.name]
        values = self.values
        in_ready = cell.pins["in_ready"]
        out_valid = cell.pins["out_valid"]
        out_data = cell.pins["out_data"]
        values[in_ready] = 1 if len(state.queue) < state.depth else 0
        if state.queue:
            values[out_valid] = 1
            values[out_data] = _mask(state.queue[0], out_data.width)
        else:
            values[out_valid] = 0
            values[out_data] = 0

    def _tick_fifo(self, cell: Cell) -> None:
        state = self.fifo_state[cell.name]
        values = self.values
        popped = (
            state.queue
            and values[cell.pins["out_ready"]] & 1
            and values[cell.pins["out_valid"]] & 1
        )
        pushed = (
            values[cell.pins["in_valid"]] & 1
            and values[cell.pins["in_ready"]] & 1
        )
        if popped:
            state.queue.popleft()
        if pushed:
            state.queue.append(values[cell.pins["in_data"]])

    def _eval_comb(self, cell: Cell) -> None:
        values = self.values
        kind = cell.kind
        pins = cell.pins
        if kind == "const":
            out = pins["out"]
            values[out] = _mask(int(cell.params["value"]), out.width)
            return
        out = pins.get("out")
        if kind in ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "eq", "lt"):
            a = values[pins["a"]]
            b = values[pins["b"]]
            if kind == "add":
                result = a + b
            elif kind == "sub":
                result = a - b
            elif kind == "mul":
                result = a * b
            elif kind == "div":
                result = a // b if b else 0
            elif kind == "mod":
                result = a % b if b else 0
            elif kind == "and":
                result = a & b
            elif kind == "or":
                result = a | b
            elif kind == "xor":
                result = a ^ b
            elif kind == "eq":
                result = 1 if a == b else 0
            else:  # lt
                result = 1 if a < b else 0
            values[out] = _mask(result, out.width)
            return
        if kind == "not":
            values[out] = _mask(~values[pins["a"]], out.width)
            return
        if kind == "shl":
            values[out] = _mask(
                values[pins["a"]] << int(cell.params["amount"]), out.width
            )
            return
        if kind == "shr":
            values[out] = _mask(
                values[pins["a"]] >> int(cell.params["amount"]), out.width
            )
            return
        if kind == "mux":
            sel = values[pins["sel"]] & 1
            values[out] = _mask(
                values[pins["a"]] if sel else values[pins["b"]], out.width
            )
            return
        if kind == "slice":
            lsb = int(cell.params["lsb"])
            values[out] = _mask(values[pins["a"]] >> lsb, out.width)
            return
        if kind == "concat":
            b_net = pins["b"]
            values[out] = _mask(
                (values[pins["a"]] << b_net.width) | values[b_net], out.width
            )
            return
        raise NetlistError(f"cannot evaluate cell kind {kind!r}")

"""Cycle-accurate two-phase simulator for RTL netlists.

Each cycle:

1. input ports are poked;
2. combinational logic is evaluated in topological order;
3. outputs can be sampled;
4. on ``tick`` the sequential cells (registers, FIFOs) latch.

Combinational loops are rejected at construction.  Values are Python ints
masked to net widths (two's-complement-free: all arithmetic is unsigned
modulo 2^width, like Verilog's unsigned semantics).
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from typing import Dict, List, Optional, Sequence

from .netlist import Cell, Module, Net, NetlistError, comb_topo_order, flatten


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def eval_comb_cell(cell: Cell, values: Dict[Net, int]) -> int:
    """Evaluate one combinational cell over ``values`` (a Net → int map).

    Returns the value of the cell's ``out`` pin, masked to its width.
    This is the single definition of combinational semantics: the
    simulator applies it per cycle and the constant-folding pass applies
    it at compile time, so folding can never diverge from simulation.
    """
    kind = cell.kind
    pins = cell.pins
    out = pins["out"]
    if kind == "const":
        return _mask(int(cell.params["value"]), out.width)
    if kind in ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "eq", "lt"):
        a = values[pins["a"]]
        b = values[pins["b"]]
        if kind == "add":
            result = a + b
        elif kind == "sub":
            result = a - b
        elif kind == "mul":
            result = a * b
        elif kind == "div":
            result = a // b if b else 0
        elif kind == "mod":
            result = a % b if b else 0
        elif kind == "and":
            result = a & b
        elif kind == "or":
            result = a | b
        elif kind == "xor":
            result = a ^ b
        elif kind == "eq":
            result = 1 if a == b else 0
        else:  # lt
            result = 1 if a < b else 0
        return _mask(result, out.width)
    if kind == "not":
        return _mask(~values[pins["a"]], out.width)
    if kind == "shl":
        return _mask(values[pins["a"]] << int(cell.params["amount"]), out.width)
    if kind == "shr":
        return _mask(values[pins["a"]] >> int(cell.params["amount"]), out.width)
    if kind == "mux":
        sel = values[pins["sel"]] & 1
        return _mask(values[pins["a"]] if sel else values[pins["b"]], out.width)
    if kind == "slice":
        return _mask(values[pins["a"]] >> int(cell.params["lsb"]), out.width)
    if kind == "concat":
        b_net = pins["b"]
        return _mask(
            (values[pins["a"]] << b_net.width) | values[b_net], out.width
        )
    raise NetlistError(f"cannot evaluate cell kind {kind!r}")


def random_stimulus(
    module: Module, cycles: int, seed: int = 0, bias: float = 0.0
) -> List[Dict[str, int]]:
    """Reproducible per-cycle input vectors for every input port.

    The same ``(module ports, cycles, seed, bias)`` always yields the
    same stream — ``random.Random`` is a platform-independent Mersenne
    twister — so differential-simulation tests are stable across runs
    and machines.  Ports are visited in declaration order.

    ``bias`` mixes corner vectors into the stream: with that probability
    (drawn from the same seeded generator, so still fully deterministic)
    a port gets all-zeros, all-ones, or the top-bit-set max-magnitude
    value instead of a uniform draw.  Pure-random vectors almost never
    exercise overflow/zero corners in wide datapaths; ``bias=0`` (the
    default) preserves the historical stream exactly.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError(f"bias must be within [0, 1], got {bias!r}")
    rng = random.Random(seed)
    inputs = module.inputs()
    if not bias:
        # Exactly the historical draw order: one getrandbits per port.
        return [
            {name: rng.getrandbits(net.width) for name, net in inputs}
            for _ in range(cycles)
        ]
    vectors: List[Dict[str, int]] = []
    for _ in range(cycles):
        vector: Dict[str, int] = {}
        for name, net in inputs:
            if rng.random() < bias:
                width = net.width
                vector[name] = rng.choice(
                    (0, (1 << width) - 1, 1 << (width - 1))
                )
            else:
                vector[name] = rng.getrandbits(net.width)
        vectors.append(vector)
    return vectors


def derive_lane_seed(seed: int, lane: int) -> int:
    """The stimulus seed lane ``lane`` of a batch uses.

    Lane 0 keeps the batch seed itself, so the first lane of any batched
    run reproduces the corresponding single-lane run exactly.  Every
    other lane's seed goes through SHA-256, which decorrelates the
    Mersenne-twister streams (nearby integer seeds produce visibly
    related first draws) and is identical on every platform.
    """
    if lane == 0:
        return int(seed)
    digest = hashlib.sha256(f"{int(seed)}:{int(lane)}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def random_stimulus_batch(
    module: Module, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
) -> List[List[Dict[str, int]]]:
    """``lanes`` independent stimulus streams from one batch seed.

    Stream ``k`` is exactly ``random_stimulus(module, cycles,
    derive_lane_seed(seed, k), bias)``: lanes are pairwise uncorrelated
    (distinct derived seeds feed distinct generators), the corner
    ``bias`` applies within each lane independently, and the whole batch
    is a pure function of ``(ports, cycles, lanes, seed, bias)``.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes!r}")
    return [
        random_stimulus(module, cycles, derive_lane_seed(seed, lane), bias)
        for lane in range(lanes)
    ]


class _FifoState:
    __slots__ = ("queue", "depth")

    def __init__(self, depth: int):
        self.queue: deque = deque()
        self.depth = depth


class Simulator:
    """Simulates a (hierarchical) module; hierarchy is flattened first.

    Already-flat modules (e.g. the ``optimize`` stage's output) are
    used as-is — simulation never mutates the netlist, so no defensive
    copy is needed.

    ``plan`` (a :class:`~repro.rtl.passes.pgo.PgoPlan`, or None) turns
    on profile-guided *dead-toggle gating*: combinational cones whose
    root support lies entirely in the plan's cold roots are skipped on
    cycles where none of those roots changed value — their net values
    from the previous settling are still correct, because every comb
    net is a pure function of the cone's roots.  Gating never changes
    observable values (the differential tests assert bit-identity to a
    plan-less interpreter); a plan for a different netlist is ignored.
    """

    def __init__(self, module: Module, plan=None):
        if any(c.kind == "submodule" for c in module.cells.values()):
            self.module = flatten(module)
        else:
            self.module = module
        self.module.validate()
        self.values: Dict[Net, int] = {
            net: 0 for net in self.module.nets.values()
        }
        self.reg_state: Dict[str, int] = {}
        self.fifo_state: Dict[str, _FifoState] = {}
        self.cycle = 0
        for cell in self.module.cells.values():
            if cell.kind in ("reg", "regen"):
                self.reg_state[cell.name] = int(cell.params.get("init", 0))
            elif cell.kind == "fifo":
                self.fifo_state[cell.name] = _FifoState(
                    int(cell.params.get("depth", 2))
                )
        self._comb_order = comb_topo_order(self.module)
        #: cone schedule [(support, gated, cells)] when gating is active.
        self._cones = None
        self._tracked: List[Net] = []
        self._prev_roots: Dict[str, int] = {}
        self._evals = 0
        if plan is not None:
            self._apply_plan(plan)

    def _apply_plan(self, plan) -> None:
        """Build the gated cone schedule (see class docstring)."""
        cold = set(getattr(plan, "cold_roots", ()) or ())
        if (
            not cold
            or plan.structural_hash != self.module.structural_hash()
        ):
            return
        from .profile import comb_cones  # local: profile imports simulate

        cones = []
        tracked = set()
        for sup, cells in comb_cones(self.module):
            gated = (not sup) or sup <= cold
            if gated and sup:
                tracked |= sup
            cones.append((sup, gated, cells))
        if not any(gated for _, gated, _ in cones):
            return
        self._cones = cones
        nets = self.module.nets
        self._tracked = [nets[name] for name in sorted(tracked)]

    # ------------------------------------------------------------------

    def poke(self, inputs: Dict[str, int]) -> None:
        for name, value in inputs.items():
            net = self.module.ports.get(name)
            if net is None or self.module.port_dirs.get(name) != "in":
                raise NetlistError(f"{self.module.name}: no input port {name!r}")
            self.values[net] = _mask(int(value), net.width)

    def evaluate(self) -> None:
        """Drive sequential outputs from state, then evaluate comb logic."""
        values = self.values
        for cell in self.module.cells.values():
            if cell.kind in ("reg", "regen"):
                q = cell.pins["q"]
                values[q] = _mask(self.reg_state[cell.name], q.width)
            elif cell.kind == "fifo":
                self._drive_fifo_outputs(cell)
        if self._cones is None:
            for cell in self._comb_order:
                self._eval_comb(cell)
            return
        self._evaluate_gated()

    def _evaluate_gated(self) -> None:
        """The dead-toggle-gated comb pass (cone schedule from the plan).

        The first evaluation fires every cone unconditionally — net
        values start at 0, which need not match any settled state, so
        nothing may be skipped until each cone has produced real values
        once.  After that a gated cone re-fires only when one of its
        support roots changed since the last evaluation; otherwise its
        output nets still hold the correct settled values (pure
        functions of unchanged roots).  Empty-support (pure-constant)
        cones fire on the first evaluation only.
        """
        values = self.values
        prev = self._prev_roots
        first = self._evals == 0
        self._evals += 1
        changed = set()
        for net in self._tracked:
            value = values[net]
            if first or prev.get(net.name) != value:
                changed.add(net.name)
                prev[net.name] = value
        for sup, gated, cells in self._cones:
            if gated and not first and (not sup or not (sup & changed)):
                continue
            for cell in cells:
                values[cell.pins["out"]] = eval_comb_cell(cell, values)

    def snapshot(self, names=None) -> Dict[str, int]:
        """Current value of every named net (all nets by default).

        The uniform observation hook profile collection uses — each
        backend implements it over its own state representation
        (Net-keyed dict here, flat slot list in the compiled engines,
        per-lane columns in the vector engine).
        """
        nets = self.module.nets
        values = self.values
        if names is None:
            names = nets
        return {name: values[nets[name]] for name in names}

    def peek(self, name: str) -> int:
        net = self.module.ports.get(name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no port {name!r}")
        return self.values[net]

    def peek_net(self, net_name: str) -> int:
        net = self.module.nets.get(net_name)
        if net is None:
            raise NetlistError(f"{self.module.name}: no net {net_name!r}")
        return self.values[net]

    def tick(self) -> None:
        """Clock edge: latch registers and FIFOs from current net values."""
        updates: Dict[str, int] = {}
        for cell in self.module.cells.values():
            if cell.kind == "reg":
                updates[cell.name] = self.values[cell.pins["d"]]
            elif cell.kind == "regen":
                if self.values[cell.pins["en"]] & 1:
                    updates[cell.name] = self.values[cell.pins["d"]]
            elif cell.kind == "fifo":
                self._tick_fifo(cell)
        self.reg_state.update(updates)
        self.cycle += 1

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Poke, evaluate, sample all outputs, then tick.  Returns outputs."""
        if inputs:
            self.poke(inputs)
        self.evaluate()
        outputs = {name: self.values[net] for name, net in self.module.outputs()}
        self.tick()
        return outputs

    def run(self, input_stream: List[Dict[str, int]]) -> List[Dict[str, int]]:
        """Feed a sequence of input maps; collect outputs for each cycle."""
        return [self.step(inputs) for inputs in input_stream]

    def run_random(
        self, cycles: int, seed: int = 0, bias: float = 0.0
    ) -> List[Dict[str, int]]:
        """Drive ``cycles`` of seeded random stimulus (reproducible)."""
        return self.run(random_stimulus(self.module, cycles, seed, bias))

    def run_batch(
        self, input_streams: Sequence[List[Dict[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Simulate each stream independently from reset; one trace per
        stream.  The interpreter has no lane parallelism — this is the
        sequential reference the batched compiled backend is verified
        against, one fresh simulator per lane."""
        return [Simulator(self.module).run(stream) for stream in input_streams]

    def run_random_batch(
        self, cycles: int, lanes: int, seed: int = 0, bias: float = 0.0
    ) -> List[List[Dict[str, int]]]:
        """``lanes`` independent seeded runs (see ``derive_lane_seed``)."""
        return self.run_batch(
            random_stimulus_batch(self.module, cycles, lanes, seed, bias)
        )

    # ------------------------------------------------------------------

    def _drive_fifo_outputs(self, cell: Cell) -> None:
        state = self.fifo_state[cell.name]
        values = self.values
        in_ready = cell.pins["in_ready"]
        out_valid = cell.pins["out_valid"]
        out_data = cell.pins["out_data"]
        values[in_ready] = 1 if len(state.queue) < state.depth else 0
        if state.queue:
            values[out_valid] = 1
            values[out_data] = _mask(state.queue[0], out_data.width)
        else:
            values[out_valid] = 0
            values[out_data] = 0

    def _tick_fifo(self, cell: Cell) -> None:
        state = self.fifo_state[cell.name]
        values = self.values
        popped = (
            state.queue
            and values[cell.pins["out_ready"]] & 1
            and values[cell.pins["out_valid"]] & 1
        )
        pushed = (
            values[cell.pins["in_valid"]] & 1
            and values[cell.pins["in_ready"]] & 1
        )
        if popped:
            state.queue.popleft()
        if pushed:
            state.queue.append(values[cell.pins["in_data"]])

    def _eval_comb(self, cell: Cell) -> None:
        self.values[cell.pins["out"]] = eval_comb_cell(cell, self.values)

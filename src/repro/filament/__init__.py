"""Concrete Filament IR (elaboration target) and its well-formedness check."""

from .ir import (
    ConstRef,
    FConnect,
    FilamentError,
    FInvoke,
    FModule,
    FPort,
    InputRef,
    InvokeOutRef,
    PackRef,
    Ref,
)
from .wellformed import check_module

__all__ = [
    "ConstRef",
    "FConnect",
    "FilamentError",
    "FInvoke",
    "FModule",
    "FPort",
    "InputRef",
    "InvokeOutRef",
    "PackRef",
    "Ref",
    "check_module",
]

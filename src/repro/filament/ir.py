"""Concrete Filament-style IR.

Elaboration (section 5 of the paper) turns a parameterized Lilac program
into a *fully structural* Filament program: all parameters are concrete
integers, loops are unrolled, conditionals are resolved, and bundles are
inlined away.  This IR is the hand-off point to RTL lowering, and it is
cheap to re-verify (see :mod:`repro.filament.wellformed`) — a useful
end-to-end sanity check that elaboration preserved what the type system
proved symbolically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union


class FilamentError(Exception):
    pass


class FPort:
    """A concrete port: width, availability window, optional array size."""

    __slots__ = ("name", "width", "start", "end", "size", "interface")

    def __init__(
        self,
        name: str,
        width: int,
        start: int,
        end: int,
        size: Optional[int] = None,
        interface: bool = False,
    ):
        self.name = name
        self.width = width
        self.start = start
        self.end = end
        self.size = size
        self.interface = interface

    def __repr__(self):
        dims = f"[{self.size}]" if self.size is not None else ""
        return f"{self.name}{dims}: [{self.start}, {self.end}) w{self.width}"


class Ref:
    """Reference to a concrete signal."""


class InputRef(Ref):
    """The component's own input port (optionally one element)."""

    __slots__ = ("port", "index")

    def __init__(self, port: str, index: Optional[int] = None):
        self.port = port
        self.index = index

    def __repr__(self):
        idx = f"{{{self.index}}}" if self.index is not None else ""
        return f"in:{self.port}{idx}"


class InvokeOutRef(Ref):
    """An output port of an invocation (optionally one element)."""

    __slots__ = ("invoke", "port", "index")

    def __init__(self, invoke: str, port: str, index: Optional[int] = None):
        self.invoke = invoke
        self.port = port
        self.index = index

    def __repr__(self):
        idx = f"{{{self.index}}}" if self.index is not None else ""
        return f"{self.invoke}.{self.port}{idx}"


class ConstRef(Ref):
    __slots__ = ("value", "width")

    def __init__(self, value: int, width: Optional[int] = None):
        self.value = value
        self.width = width

    def __repr__(self):
        return f"const:{self.value}"


class PackRef(Ref):
    """An array-valued signal assembled from scalar element refs
    (a whole bundle passed to an array port; element 0 at the LSB)."""

    __slots__ = ("elements",)

    def __init__(self, elements):
        self.elements = list(elements)

    def __repr__(self):
        return f"pack[{len(self.elements)}]"


class FInvoke:
    """A scheduled use of a child module at a concrete time.

    ``_instance_key`` identifies the hardware instance this invocation
    uses: invokes sharing a key share (time-multiplexed) hardware.
    """

    __slots__ = ("name", "child", "time", "args", "_instance_key")

    def __init__(self, name: str, child, time: int, args: List[Ref]):
        self.name = name
        self.child = child  # ElabResult of the child component
        self.time = time
        self.args = list(args)
        self._instance_key = name

    def __repr__(self):
        return f"{self.name} := {self.child.name}<G+{self.time}>"


class FConnect:
    """Drive an output port (element) from a signal."""

    __slots__ = ("port", "index", "src")

    def __init__(self, port: str, index: Optional[int], src: Ref):
        self.port = port
        self.index = index
        self.src = src

    def __repr__(self):
        idx = f"{{{self.index}}}" if self.index is not None else ""
        return f"out:{self.port}{idx} = {self.src!r}"


class FModule:
    """A fully concrete, structural component."""

    def __init__(
        self,
        name: str,
        delay: int,
        inputs: List[FPort],
        outputs: List[FPort],
        out_params: Dict[str, int],
    ):
        self.name = name
        self.delay = delay
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.out_params = dict(out_params)
        self.invokes: List[FInvoke] = []
        self.connects: List[FConnect] = []

    def input(self, name: str) -> FPort:
        for port in self.inputs:
            if port.name == name:
                return port
        raise FilamentError(f"{self.name}: no input {name!r}")

    def output(self, name: str) -> FPort:
        for port in self.outputs:
            if port.name == name:
                return port
        raise FilamentError(f"{self.name}: no output {name!r}")

    def invoke_named(self, name: str) -> FInvoke:
        for invoke in self.invokes:
            if invoke.name == name:
                return invoke
        raise FilamentError(f"{self.name}: no invoke {name!r}")

    def __repr__(self):
        return (
            f"FModule({self.name}, delay={self.delay}, "
            f"{len(self.invokes)} invokes, {len(self.connects)} connects)"
        )

"""Concrete well-formedness checks over elaborated Filament programs.

After elaboration everything is an integer, so the three safety properties
of section 4.2 reduce to simple arithmetic checks.  The type system already
proved them for *all* parameterizations; re-checking each *concrete*
elaboration is a cheap cross-validation of the whole pipeline (and guards
generator stand-ins that report inconsistent timing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ir import (
    ConstRef,
    FilamentError,
    FInvoke,
    FModule,
    FPort,
    InputRef,
    InvokeOutRef,
    PackRef,
    Ref,
)


def _ref_window(module: FModule, ref: Ref) -> Optional[Tuple[int, int, int]]:
    """Return (start, end, width) for a reference; None when unconstrained."""
    if isinstance(ref, ConstRef):
        return None
    if isinstance(ref, PackRef):
        windows = [_ref_window(module, e) for e in ref.elements]
        concrete = [w for w in windows if w is not None]
        if not concrete:
            return None
        widths = {w[2] for w in concrete}
        if len(widths) != 1:
            raise FilamentError(
                f"{module.name}: packed elements have mixed widths {widths}"
            )
        return (
            max(w[0] for w in concrete),
            min(w[1] for w in concrete),
            widths.pop(),
        )
    if isinstance(ref, InputRef):
        port = module.input(ref.port)
        width = port.width
        if ref.index is not None:
            if port.size is None:
                raise FilamentError(
                    f"{module.name}: scalar input {port.name!r} indexed"
                )
            if not (0 <= ref.index < port.size):
                raise FilamentError(
                    f"{module.name}: index {ref.index} out of bounds for "
                    f"{port.name}[{port.size}]"
                )
        return (port.start, port.end, width)
    if isinstance(ref, InvokeOutRef):
        invoke = module.invoke_named(ref.invoke)
        port = invoke.child.output(ref.port)
        width = port.width
        if ref.index is not None:
            if port.size is None:
                raise FilamentError(
                    f"{module.name}: scalar output {ref.port!r} indexed"
                )
            if not (0 <= ref.index < port.size):
                raise FilamentError(
                    f"{module.name}: index {ref.index} out of bounds for "
                    f"{ref.invoke}.{ref.port}[{port.size}]"
                )
        return (invoke.time + port.start, invoke.time + port.end, width)
    raise FilamentError(f"unknown ref {ref!r}")


def check_module(module: FModule) -> None:
    """Raise FilamentError on any concrete structural hazard."""
    _check_invokes(module)
    _check_connects(module)
    _check_resource_safety(module)


def _check_invokes(module: FModule) -> None:
    for invoke in module.invokes:
        child = invoke.child
        data_ports = [p for p in child.inputs if not p.interface]
        if len(invoke.args) != len(data_ports):
            raise FilamentError(
                f"{module.name}: {invoke.name} expects {len(data_ports)} "
                f"args, got {len(invoke.args)}"
            )
        for port, arg in zip(data_ports, invoke.args):
            window = _ref_window(module, arg)
            req_start = invoke.time + port.start
            req_end = invoke.time + port.end
            if window is None:
                continue
            start, end, width = window
            if not (start <= req_start and req_end <= end):
                raise FilamentError(
                    f"{module.name}: {invoke.name}.{port.name} requires "
                    f"[{req_start}, {req_end}) but {arg!r} is available in "
                    f"[{start}, {end})"
                )
            arg_size = _ref_size(module, arg)
            if (arg_size or None) != (port.size or None):
                raise FilamentError(
                    f"{module.name}: array size mismatch at "
                    f"{invoke.name}.{port.name}"
                )
            if width != port.width:
                raise FilamentError(
                    f"{module.name}: width mismatch at {invoke.name}."
                    f"{port.name}: {width} vs {port.width}"
                )


def _ref_size(module: FModule, ref: Ref) -> Optional[int]:
    if isinstance(ref, InputRef) and ref.index is None:
        return module.input(ref.port).size
    if isinstance(ref, InvokeOutRef) and ref.index is None:
        return module.invoke_named(ref.invoke).child.output(ref.port).size
    if isinstance(ref, PackRef):
        return len(ref.elements)
    return None


def _check_connects(module: FModule) -> None:
    driven: Set[Tuple[str, Optional[int]]] = set()
    for connect in module.connects:
        port = module.output(connect.port)
        key = (connect.port, connect.index)
        if key in driven:
            raise FilamentError(
                f"{module.name}: output {connect.port}"
                f"{'' if connect.index is None else '[%d]' % connect.index} "
                "driven twice"
            )
        driven.add(key)
        if connect.index is not None:
            if port.size is None:
                raise FilamentError(
                    f"{module.name}: scalar output {port.name!r} indexed"
                )
            if not (0 <= connect.index < port.size):
                raise FilamentError(
                    f"{module.name}: output index {connect.index} out of "
                    f"bounds for {port.name}[{port.size}]"
                )
        window = _ref_window(module, connect.src)
        if window is not None:
            start, end, _width = window
            if not (start <= port.start and port.end <= end):
                raise FilamentError(
                    f"{module.name}: output {port.name} requires "
                    f"[{port.start}, {port.end}) but source is available in "
                    f"[{start}, {end})"
                )
    # Coverage: every output element must be driven.
    for port in module.outputs:
        if port.interface:
            continue
        if port.size is None:
            if (port.name, None) not in driven:
                raise FilamentError(
                    f"{module.name}: output {port.name!r} never driven"
                )
        else:
            for index in range(port.size):
                if (port.name, index) not in driven:
                    raise FilamentError(
                        f"{module.name}: output element {port.name}[{index}] "
                        "never driven"
                    )


def _check_resource_safety(module: FModule) -> None:
    """Delay spacing: invocations of one instance must be >= delay apart
    and all fit within the parent's initiation interval."""
    # Invokes carry their instance identity via the attribute set by the
    # elaborator; invokes sharing an instance share hardware.
    groups: Dict[str, List[FInvoke]] = {}
    for invoke in module.invokes:
        key = getattr(invoke, "_instance_key", invoke.name)
        groups.setdefault(key, []).append(invoke)
    for key, invokes in groups.items():
        delay = invokes[0].child.delay
        if delay > module.delay:
            raise FilamentError(
                f"{module.name}: child delay {delay} exceeds module delay "
                f"{module.delay} for instance {key}"
            )
        times = sorted(inv.time for inv in invokes)
        for first, second in zip(times, times[1:]):
            if second - first < delay:
                raise FilamentError(
                    f"{module.name}: instance {key} re-invoked after "
                    f"{second - first} < delay {delay}"
                )
        if times and (times[-1] - times[0]) > module.delay - delay:
            raise FilamentError(
                f"{module.name}: invocations of {key} span "
                f"{times[-1] - times[0]} cycles, exceeding II "
                f"{module.delay} - delay {delay}"
            )
